// Tests for the networked service layer: wire round trips over the loopback
// transport, session lifecycle (limits, idle timeouts, graceful shutdown),
// group-commit batching under concurrent clients, end-to-end tamper
// detection, and durability of acknowledged commits.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/net/loopback.h"
#include "src/net/tcp.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/platform/trusted_store.h"
#include "src/server/blob.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/store/untrusted_store.h"

namespace tdb::server {
namespace {

const BlobValue& AsBlob(const ObjectPtr& object) {
  return dynamic_cast<const BlobValue&>(*object);
}

class ServerTest : public ::testing::Test {
 protected:
  // The store models a little device latency per flush (as the bench
  // does): with instant flushes, commits can drain faster than concurrent
  // sessions queue up and GroupCommitBatchesConcurrentCommits would depend
  // on scheduler luck to ever see a batch form.
  ServerTest()
      : store_({.segment_size = 8192,
                .num_segments = 512,
                .flush_latency = std::chrono::microseconds(200)}),
        secret_(Bytes(32, 0xA5)) {
    chunk_options_.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_}, chunk_options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
    EXPECT_TRUE(RegisterType<BlobValue>(registry_).ok());
    auto pid = chunks_->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)});
    EXPECT_TRUE(chunks_->Commit(std::move(batch)).ok());
    partition_ = *pid;
  }

  void StartServer(TdbServerOptions options = {}) {
    server_ = std::make_unique<TdbServer>(chunks_.get(), partition_,
                                          &registry_, options);
    ASSERT_TRUE(server_->Start(&transport_, "tdb").ok());
  }

  std::unique_ptr<TdbClient> NewClient() {
    auto client = std::make_unique<TdbClient>(&registry_);
    EXPECT_TRUE(client->Connect(&transport_, server_->address()).ok());
    return client;
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions chunk_options_;
  TypeRegistry registry_;
  std::unique_ptr<ChunkStore> chunks_;
  PartitionId partition_ = 0;
  net::LoopbackTransport transport_;
  std::unique_ptr<TdbServer> server_;
};

TEST_F(ServerTest, PingRoundTrip) {
  StartServer();
  auto client = NewClient();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, InsertIsVisibleToOtherSessionsAfterCommit) {
  StartServer();
  auto writer = NewClient();
  ASSERT_TRUE(writer->Begin().ok());
  auto id = writer->Insert(BlobValue("hello over the wire"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(writer->Commit().ok());

  auto reader = NewClient();
  ASSERT_TRUE(reader->Begin().ok());
  auto blob = reader->Get(*id);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(AsBlob(*blob).value, "hello over the wire");
  EXPECT_TRUE(reader->Abort().ok());
}

TEST_F(ServerTest, PutAndDeleteRoundTrip) {
  StartServer();
  auto client = NewClient();
  ASSERT_TRUE(client->Begin().ok());
  auto id = client->Insert(BlobValue("v1"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client->Commit().ok());

  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(client->Put(*id, BlobValue("v2")).ok());
  ASSERT_TRUE(client->Commit().ok());

  ASSERT_TRUE(client->Begin().ok());
  EXPECT_EQ(AsBlob(*client->Get(*id)).value, "v2");
  ASSERT_TRUE(client->Delete(*id).ok());
  ASSERT_TRUE(client->Commit().ok());

  ASSERT_TRUE(client->Begin().ok());
  EXPECT_EQ(client->Get(*id).status().code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, AbortDiscardsBufferedWrites) {
  StartServer();
  auto client = NewClient();
  ASSERT_TRUE(client->Begin().ok());
  auto id = client->Insert(BlobValue("keep"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client->Commit().ok());

  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(client->Put(*id, BlobValue("discard")).ok());
  ASSERT_TRUE(client->Abort().ok());

  ASSERT_TRUE(client->Begin().ok());
  EXPECT_EQ(AsBlob(*client->Get(*id)).value, "keep");
}

TEST_F(ServerTest, ProtocolErrorsComeBackAsStatuses) {
  StartServer();
  auto client = NewClient();

  // Data operations need an open transaction.
  EXPECT_EQ(client->Get(ObjectId(partition_, 0, 0)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client->Commit().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(client->Begin().ok());
  // Double begin is rejected; the open transaction survives.
  EXPECT_EQ(client->Begin().code(), StatusCode::kFailedPrecondition);

  // Reading an allocated-but-never-written id.
  EXPECT_EQ(client->Get(ObjectId(partition_, 0, 12345)).status().code(),
            StatusCode::kNotFound);

  // Ids outside the served partition — another partition, the system
  // partition's leader chunks, map chunks — never reach the stores.
  EXPECT_EQ(client->Get(ObjectId(partition_ + 1, 0, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client->Get(ObjectId(kSystemPartition, 0, partition_))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client->Get(ObjectId(partition_, 1, 0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, MalformedFrameGetsErrorThenHangup) {
  StartServer();
  auto conn = transport_.Connect(server_->address(),
                                 std::chrono::milliseconds(1000));
  ASSERT_TRUE(conn.ok());
  Bytes junk = {0x00, 0x01, 0x02, 0x03};
  ASSERT_TRUE((*conn)->Send(junk, std::chrono::milliseconds(1000)).ok());
  auto frame = (*conn)->Recv(std::chrono::milliseconds(2000));
  ASSERT_TRUE(frame.ok());
  auto response = DecodeResponse(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(StatusFromResponse(*response).ok());
  // The server no longer trusts the stream and closes it.
  EXPECT_EQ((*conn)->Recv(std::chrono::milliseconds(2000)).status().code(),
            StatusCode::kIoError);
}

TEST_F(ServerTest, SessionLimitRejectsWithBusyResponse) {
  StartServer({.max_sessions = 1});
  auto first = NewClient();
  ASSERT_TRUE(first->Ping().ok());  // the session is now live server-side

  auto conn = transport_.Connect(server_->address(),
                                 std::chrono::milliseconds(1000));
  ASSERT_TRUE(conn.ok());
  // The server answers over-limit connections unprompted, then closes.
  auto frame = (*conn)->Recv(std::chrono::milliseconds(2000));
  ASSERT_TRUE(frame.ok());
  auto response = DecodeResponse(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(StatusFromResponse(*response).code(),
            StatusCode::kFailedPrecondition);

  // Closing the first session frees the slot.
  first->Disconnect();
  std::unique_ptr<TdbClient> second;
  for (int i = 0; i < 100; ++i) {
    second = std::make_unique<TdbClient>(&registry_);
    ASSERT_TRUE(second->Connect(&transport_, server_->address()).ok());
    if (second->Ping().ok()) {
      break;
    }
    second->Disconnect();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(second->Ping().ok());
  EXPECT_GE(server_->GetStats().sessions_rejected, 1u);
}

TEST_F(ServerTest, IdleSessionLosesItsLocks) {
  StartServer({.idle_timeout = std::chrono::milliseconds(100),
               .lock_timeout = std::chrono::milliseconds(100)});
  auto holder = NewClient();
  ASSERT_TRUE(holder->Begin().ok());
  auto id = holder->Insert(BlobValue("locked"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(holder->Commit().ok());
  ASSERT_TRUE(holder->Begin().ok());
  ASSERT_TRUE(holder->GetForUpdate(*id).ok());

  // The holder now goes silent; the server aborts its transaction after the
  // idle timeout, releasing the exclusive lock for the second session.
  auto contender = NewClient();
  ASSERT_TRUE(contender->Begin().ok());
  Status status = TimeoutError("never tried");
  for (int i = 0; i < 100; ++i) {
    status = contender->GetForUpdate(*id).status();
    if (status.ok()) {
      break;
    }
    ASSERT_EQ(status.code(), StatusCode::kTimeout);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(status.ok());
  EXPECT_GE(server_->GetStats().idle_timeouts, 1u);
}

TEST_F(ServerTest, GroupCommitBatchesConcurrentCommits) {
  obs::MetricsRegistry::Instance().Reset();
  obs::MetricsRegistry::Instance().Enable();
  StartServer({.group_commit = true, .group_commit_max_batch = 64});

  // Each client owns a distinct object, so transactions never conflict and
  // every commit reaches the queue; concurrency makes leaders absorb
  // followers.
  constexpr int kClients = 8;
  constexpr int kCommitsPerClient = 50;
  std::vector<ObjectId> ids(kClients);
  {
    auto setup = NewClient();
    ASSERT_TRUE(setup->Begin().ok());
    for (int i = 0; i < kClients; ++i) {
      auto id = setup->Insert(BlobValue("seed"));
      ASSERT_TRUE(id.ok());
      ids[i] = *id;
    }
    ASSERT_TRUE(setup->Commit().ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TdbClient client(&registry_);
      if (!client.Connect(&transport_, server_->address()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kCommitsPerClient; ++i) {
        if (!client.Begin().ok() ||
            !client.Put(ids[c], BlobValue("v" + std::to_string(i))).ok() ||
            !client.Commit().ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  bool saw_batch_histogram = false;
  for (const auto& h : obs::MetricsRegistry::Instance().Histograms()) {
    if (h.name == "object.group_commit_batch") {
      saw_batch_histogram = true;
      EXPECT_GT(h.max, 1.0)
          << "no commit was ever coalesced with another despite " << kClients
          << " concurrent clients";
    }
  }
  EXPECT_TRUE(saw_batch_histogram);
  obs::MetricsRegistry::Instance().Disable();

  // Every client's last write is in place.
  auto check = NewClient();
  ASSERT_TRUE(check->Begin().ok());
  for (int c = 0; c < kClients; ++c) {
    auto blob = check->Get(ids[c]);
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(AsBlob(*blob).value,
              "v" + std::to_string(kCommitsPerClient - 1));
  }
}

TEST_F(ServerTest, TamperedChunkIsDetectedOverTheWire) {
  // cache_capacity 1: reading object B evicts A from the object cache, so
  // the next Get(A) must re-read, decrypt, and validate the tampered chunk.
  StartServer({.cache_capacity = 1});
  auto client = NewClient();
  ASSERT_TRUE(client->Begin().ok());
  auto a = client->Insert(BlobValue("target of the attack"));
  auto b = client->Insert(BlobValue("cache filler"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(client->Commit().ok());

  auto loc = chunks_->DebugChunkLocation(*a);
  ASSERT_TRUE(loc.ok());
  store_.CorruptByte(loc->first.segment, loc->first.offset + loc->second / 2,
                     0x40);

  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(client->Get(*b).ok());  // evicts A
  EXPECT_EQ(client->Get(*a).status().code(), StatusCode::kTamperDetected);
}

TEST_F(ServerTest, AcknowledgedCommitSurvivesRestart) {
  StartServer();
  ObjectId id;
  {
    auto client = NewClient();
    ASSERT_TRUE(client->Begin().ok());
    auto inserted = client->Insert(BlobValue("durable"));
    ASSERT_TRUE(inserted.ok());
    id = *inserted;
    ASSERT_TRUE(client->Commit().ok());
    // The acknowledgement above is the durability point: everything below
    // models a crash right after it.
  }
  server_->Stop();
  server_.reset();
  chunks_.reset();

  auto reopened = ChunkStore::Open(
      &store_, TrustedServices{&secret_, nullptr, &counter_}, chunk_options_);
  ASSERT_TRUE(reopened.ok());
  ObjectStore objects(reopened->get(), partition_, &registry_);
  auto txn = objects.Begin();
  auto blob = txn->Get(id);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(AsBlob(*blob).value, "durable");
}

TEST_F(ServerTest, StopUnblocksConnectedClients) {
  StartServer();
  auto client = NewClient();
  ASSERT_TRUE(client->Begin().ok());
  server_->Stop();
  // The session connection was closed server-side; the client sees an error,
  // not a hang.
  EXPECT_FALSE(client->Ping().ok());
  EXPECT_EQ(server_->GetStats().active_sessions, 0u);
}

TEST_F(ServerTest, StatsCountSessionsAndRequests) {
  StartServer();
  {
    auto c1 = NewClient();
    auto c2 = NewClient();
    ASSERT_TRUE(c1->Ping().ok());
    ASSERT_TRUE(c2->Ping().ok());
    ASSERT_TRUE(c1->Ping().ok());
  }
  server_->Stop();  // joins the workers, so the counts below are final
  TdbServer::Stats stats = server_->GetStats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_GE(stats.requests, 3u);
  EXPECT_EQ(stats.active_sessions, 0u);
}

// The loopback transport exchanges whole frames, so attacks on the framing
// layer itself — a length prefix past the kMaxFrameBytes cap, a connection
// torn down mid-frame — can only be expressed against the TCP transport
// with a raw socket. Returns -1 if the connect fails.
int RawConnect(const std::string& address) {
  auto colon = address.rfind(':');
  if (colon == std::string::npos) {
    return -1;
  }
  std::string host = address.substr(0, colon);
  int port = std::atoi(address.c_str() + colon + 1);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval timeout{.tv_sec = 3, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

TEST_F(ServerTest, TcpTransportSmokeTest) {
  net::TcpTransport tcp;
  TdbServer server(chunks_.get(), partition_, &registry_, {});
  Status started = server.Start(&tcp, "127.0.0.1:0");
  if (!started.ok()) {
    GTEST_SKIP() << "TCP unavailable in this environment: " << started;
  }
  TdbClient client(&registry_);
  ASSERT_TRUE(client.Connect(&tcp, server.address()).ok());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Begin().ok());
  auto id = client.Insert(BlobValue("over real sockets"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.Commit().ok());
  ASSERT_TRUE(client.Begin().ok());
  auto blob = client.Get(*id);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(AsBlob(*blob).value, "over real sockets");
  client.Disconnect();
  server.Stop();
}

TEST_F(ServerTest, OversizedFrameClosesTheConnectionWithoutServingIt) {
  net::TcpTransport tcp;
  TdbServer server(chunks_.get(), partition_, &registry_, {});
  Status started = server.Start(&tcp, "127.0.0.1:0");
  if (!started.ok()) {
    GTEST_SKIP() << "TCP unavailable in this environment: " << started;
  }

  int fd = RawConnect(server.address());
  ASSERT_GE(fd, 0);
  // A 4-byte big-endian length prefix one past the 16MB cap. The server must
  // reject it from the header alone — never allocate the body, never wait
  // for it to arrive — and drop the connection.
  uint32_t claimed = static_cast<uint32_t>(net::kMaxFrameBytes + 1);
  unsigned char prefix[4] = {static_cast<unsigned char>(claimed >> 24),
                             static_cast<unsigned char>(claimed >> 16),
                             static_cast<unsigned char>(claimed >> 8),
                             static_cast<unsigned char>(claimed)};
  ASSERT_EQ(::send(fd, prefix, sizeof(prefix), 0),
            static_cast<ssize_t>(sizeof(prefix)));

  // Drain until the server hangs up. It owes us nothing (no body ever
  // followed the header), so anything beyond a small error response means
  // the cap was not enforced.
  size_t received = 0;
  bool closed = false;
  char buffer[512];
  for (int i = 0; i < 64; ++i) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      closed = n == 0;
      break;
    }
    received += static_cast<size_t>(n);
  }
  ::close(fd);
  EXPECT_TRUE(closed) << "server kept the poisoned connection open";
  EXPECT_LT(received, size_t{4096});

  // The server itself is unharmed: a well-formed client is still served.
  TdbClient client(&registry_);
  ASSERT_TRUE(client.Connect(&tcp, server.address()).ok());
  EXPECT_TRUE(client.Ping().ok());
  client.Disconnect();
  server.Stop();
}

TEST_F(ServerTest, MidFrameDisconnectLeavesOtherSessionsServed) {
  net::TcpTransport tcp;
  TdbServer server(chunks_.get(), partition_, &registry_, {});
  Status started = server.Start(&tcp, "127.0.0.1:0");
  if (!started.ok()) {
    GTEST_SKIP() << "TCP unavailable in this environment: " << started;
  }

  // A healthy session with an open transaction, established first so it is
  // mid-flight while the malformed peer comes and goes.
  TdbClient healthy(&registry_);
  ASSERT_TRUE(healthy.Connect(&tcp, server.address()).ok());
  ASSERT_TRUE(healthy.Begin().ok());
  auto id = healthy.Insert(BlobValue("survives the rude neighbor"));
  ASSERT_TRUE(id.ok());

  // Promise a 64-byte frame, deliver 10 bytes, vanish.
  int fd = RawConnect(server.address());
  ASSERT_GE(fd, 0);
  unsigned char partial[14] = {0, 0, 0, 64, 'h', 'a', 'l', 'f',
                               ' ', 'a', ' ', 'f', 'r', 'a'};
  ASSERT_EQ(::send(fd, partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(fd);

  // The abandoned read must not wedge a worker or poison shared state: the
  // healthy session finishes its transaction and new sessions are accepted.
  ASSERT_TRUE(healthy.Commit().ok());
  ASSERT_TRUE(healthy.Begin().ok());
  auto blob = healthy.Get(*id);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(AsBlob(*blob).value, "survives the rude neighbor");
  ASSERT_TRUE(healthy.Abort().ok());

  TdbClient late(&registry_);
  ASSERT_TRUE(late.Connect(&tcp, server.address()).ok());
  EXPECT_TRUE(late.Ping().ok());

  healthy.Disconnect();
  late.Disconnect();
  server.Stop();
}

TEST_F(ServerTest, ScanOverNeverWrittenIdsFailsCleanlyPerKey) {
  StartServer();
  auto writer = NewClient();
  ASSERT_TRUE(writer->Begin().ok());
  auto id = writer->Insert(BlobValue("the only record"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(writer->Commit().ok());

  // A scan is issued as consecutive point reads (the wire protocol has no
  // range op), so a scan that runs off the end of the written key space is
  // a burst of Gets on allocated-but-never-written ranks. Each one must
  // come back kNotFound without disturbing the session.
  auto reader = NewClient();
  ASSERT_TRUE(reader->Begin().ok());
  for (uint32_t rank = 50000; rank < 50008; ++rank) {
    EXPECT_EQ(reader->Get(ObjectId(partition_, 0, rank)).status().code(),
              StatusCode::kNotFound)
        << "rank " << rank;
  }
  // The locking read path answers the same way.
  EXPECT_EQ(
      reader->GetForUpdate(ObjectId(partition_, 0, 50008)).status().code(),
      StatusCode::kNotFound);

  // kNotFound is advisory, not fatal: the same transaction still reads real
  // data and commits.
  auto blob = reader->Get(*id);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(AsBlob(*blob).value, "the only record");
  EXPECT_TRUE(reader->Commit().ok());
}

// --- Wire op table ---------------------------------------------------------

TEST(WireOpTableTest, UnknownOpBytesFailDecoding) {
  // Bytes just outside the table (0 below kPing, 22 above kHandoffFinish)
  // have no OpInfo entry and must be rejected at decode time, not
  // dispatched.
  EXPECT_EQ(FindOpInfo(static_cast<Op>(0)), nullptr);
  EXPECT_EQ(FindOpInfo(static_cast<Op>(22)), nullptr);
  EXPECT_EQ(FindOpInfo(static_cast<Op>(0xFF)), nullptr);
  for (uint8_t raw : {uint8_t{0}, uint8_t{22}, uint8_t{0xFF}}) {
    Request request;
    request.op = static_cast<Op>(raw);
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_FALSE(decoded.ok()) << "op byte " << int{raw};
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(WireOpTableTest, EveryOpHasConsistentNameAndHistogramNames) {
  for (uint8_t raw = 1; raw <= 21; ++raw) {
    const OpInfo* info = FindOpInfo(static_cast<Op>(raw));
    ASSERT_NE(info, nullptr) << "op byte " << int{raw};
    EXPECT_EQ(static_cast<uint8_t>(info->op), raw);
    ASSERT_NE(info->name, nullptr);
    EXPECT_STRNE(info->name, "");
    // The histogram names derive mechanically from the wire name, so the
    // server and client span metrics can never drift from OpName output.
    EXPECT_EQ(std::string(info->server_histogram),
              "wire.op." + std::string(info->name) + ".us");
    EXPECT_EQ(std::string(info->client_histogram),
              "wire.rtt." + std::string(info->name) + ".us");
    EXPECT_STREQ(OpName(info->op), info->name);
  }
  EXPECT_STREQ(OpName(Op::kStats), "stats");
  EXPECT_STREQ(OpName(Op::kStatsReset), "stats_reset");
  EXPECT_STREQ(OpName(static_cast<Op>(0)), "unknown");
}

TEST(WireOpTableTest, PartitionFieldRoundTripsThroughTheWireFormat) {
  // v2 frames carry the partition id between the op byte and the object id.
  Request request;
  request.op = Op::kBegin;
  request.partition = 7;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, Op::kBegin);
  EXPECT_EQ(decoded->partition, 7u);
}

TEST(WireOpTableTest, OldWireVersionFramesAreRejectedNotMisparsed) {
  // A v1 peer's frames differ in layout (no partition field), so they must
  // be refused outright — kUnimplemented with a version message, never a
  // garbled decode. Patch the version byte (offset 1, after the magic) on an
  // otherwise-valid v2 frame to fake an old client.
  Request request;
  request.op = Op::kBegin;
  Bytes frame = EncodeRequest(request);
  ASSERT_GE(frame.size(), 2u);
  EXPECT_EQ(frame[1], kWireVersion);
  frame[1] = 1;
  auto decoded = DecodeRequest(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(decoded.status().message().find("unsupported wire version"),
            std::string::npos);

  Bytes reply = EncodeResponse(ResponseFromStatus(OkStatus()));
  reply[1] = 1;
  auto response = DecodeResponse(reply);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnimplemented);
}

TEST(WireOpTableTest, MovedStatusCodeSurvivesTheWire) {
  // kMoved is the redirect status; it must round-trip so clients can learn
  // the new address, and codes beyond it must still be rejected.
  Response moved = ResponseFromStatus(MovedError("127.0.0.1:7777"));
  auto decoded = DecodeResponse(EncodeResponse(moved));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kMoved);
  EXPECT_EQ(decoded->message, "127.0.0.1:7777");

  Bytes frame = EncodeResponse(moved);
  frame[2] = static_cast<uint8_t>(StatusCode::kMoved) + 1;
  auto bad = DecodeResponse(frame);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(WireOpTableTest, StatsOpsRoundTripThroughTheWireFormat) {
  for (Op op : {Op::kStats, Op::kStatsReset}) {
    Request request;
    request.op = op;
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->op, op);
    EXPECT_EQ(decoded->object_id, 0u);
    EXPECT_TRUE(decoded->object.empty());
  }
}

// --- Remote stats ops and request spans ------------------------------------

TEST_F(ServerTest, StatsOpReturnsSnapshotOutsideTransaction) {
  obs::MetricsRegistry::Instance().Reset();
  obs::MetricsRegistry::Instance().Enable();
  StartServer();
  auto client = NewClient();

  // kStats needs no open transaction: a monitoring client connects and asks.
  auto idle = client->FetchStats();
  ASSERT_TRUE(idle.ok());
  EXPECT_NE(idle->find("\"histograms\""), std::string::npos);

  ASSERT_TRUE(client->Begin().ok());
  auto id = client->Insert(BlobValue("observed"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client->Put(*id, BlobValue("observed twice")).ok());
  ASSERT_TRUE(client->Commit().ok());

  auto stats = client->FetchStats();
  ASSERT_TRUE(stats.ok());
  // Per-op server spans recorded for the traffic above, with percentile
  // fields, plus the server gauges published at snapshot time.
  EXPECT_NE(stats->find("wire.op.put.us"), std::string::npos);
  EXPECT_NE(stats->find("wire.op.commit.us"), std::string::npos);
  EXPECT_NE(stats->find("wire.stage.handle_us"), std::string::npos);
  EXPECT_NE(stats->find("\"p999\""), std::string::npos);
  EXPECT_NE(stats->find("server.sessions.active"), std::string::npos);
  EXPECT_NE(stats->find("server.requests"), std::string::npos);
  // Client-side RTT spans land in the same process-wide registry here
  // (loopback), so they ride along in the snapshot too.
  EXPECT_NE(stats->find("wire.rtt.put.us"), std::string::npos);

  // A stats fetch must not disturb the session: the transaction protocol
  // still works afterwards.
  ASSERT_TRUE(client->Begin().ok());
  EXPECT_EQ(AsBlob(*client->Get(*id)).value, "observed twice");
  EXPECT_TRUE(client->Abort().ok());
  obs::MetricsRegistry::Instance().Disable();
}

TEST_F(ServerTest, StatsResetClearsServerMetrics) {
  obs::MetricsRegistry::Instance().Reset();
  obs::MetricsRegistry::Instance().Enable();
  StartServer();
  auto client = NewClient();

  ASSERT_TRUE(client->Begin().ok());
  auto id = client->Insert(BlobValue("soon forgotten"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client->Commit().ok());

  auto before = client->FetchStats();
  ASSERT_TRUE(before.ok());
  ASSERT_NE(before->find("wire.op.insert.us"), std::string::npos);
  ASSERT_NE(before->find("wire.op.commit.us"), std::string::npos);

  ASSERT_TRUE(client->ResetStats().ok());

  // The reset wiped everything recorded before it; the only spans that can
  // reappear are for the stats_reset/stats traffic itself (each op is
  // observed after its response is sent, so a snapshot never includes its
  // own request).
  auto after = client->FetchStats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->find("wire.op.insert.us"), std::string::npos);
  EXPECT_EQ(after->find("wire.op.commit.us"), std::string::npos);
  obs::MetricsRegistry::Instance().Disable();
}

TEST_F(ServerTest, SlowRequestsEmitTraceEvents) {
  auto& journal = obs::TraceJournal::Instance();
  journal.Reset();
  journal.Enable();
  // Every request is "slow" against a 1 us threshold; the commit certainly
  // is (the store models 200 us of flush latency).
  StartServer({.slow_request_threshold = std::chrono::microseconds(1)});
  auto client = NewClient();
  ASSERT_TRUE(client->Begin().ok());
  auto id = client->Insert(BlobValue("sluggish"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client->Commit().ok());
  // The span (and its slow-request event) is emitted after the response is
  // sent, so the client can observe its own commit before the server logs
  // it. The session loop is sequential: one more round trip guarantees the
  // commit's iteration — including the emit — has finished.
  ASSERT_TRUE(client->Ping().ok());

  EXPECT_GT(journal.CountOf(obs::TraceKind::kSlowRequest), 0u);
  bool saw_commit_event = false;
  for (const auto& event : journal.Snapshot()) {
    if (event.kind != obs::TraceKind::kSlowRequest) {
      continue;
    }
    EXPECT_STREQ(event.module, "server");
    EXPECT_GT(event.b, 0u);  // duration in microseconds
    // The detail carries the op and the stage breakdown.
    EXPECT_NE(event.detail.find("op="), std::string::npos);
    EXPECT_NE(event.detail.find("handle_us="), std::string::npos);
    EXPECT_NE(event.detail.find("send_us="), std::string::npos);
    if (event.detail.find("op=commit") != std::string::npos) {
      saw_commit_event = true;
    }
  }
  EXPECT_TRUE(saw_commit_event);
  journal.Disable();
  journal.Reset();
}

TEST_F(ServerTest, DefaultThresholdDoesNotFlagLoopbackTraffic) {
  auto& journal = obs::TraceJournal::Instance();
  journal.Reset();
  journal.Enable();
  // The default threshold is 100 ms; nothing on an in-memory rig with a
  // 200 us flush comes near it, so a quiet journal is the expected steady
  // state in production.
  StartServer();
  auto client = NewClient();
  ASSERT_TRUE(client->Begin().ok());
  auto id = client->Insert(BlobValue("quick"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client->Commit().ok());
  EXPECT_EQ(journal.CountOf(obs::TraceKind::kSlowRequest), 0u);
  journal.Disable();
  journal.Reset();
}

TEST_F(ServerTest, StatsRoundTripOverTcp) {
  obs::MetricsRegistry::Instance().Reset();
  obs::MetricsRegistry::Instance().Enable();
  net::TcpTransport tcp;
  TdbServer server(chunks_.get(), partition_, &registry_, {});
  Status started = server.Start(&tcp, "127.0.0.1:0");
  if (!started.ok()) {
    obs::MetricsRegistry::Instance().Disable();
    GTEST_SKIP() << "TCP unavailable in this environment: " << started;
  }
  TdbClient client(&registry_);
  ASSERT_TRUE(client.Connect(&tcp, server.address()).ok());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Begin().ok());
  auto id = client.Insert(BlobValue("stats over real sockets"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.Commit().ok());

  // The exact path a remote `tdb_stats --connect` takes.
  auto stats = client.FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"histograms\""), std::string::npos);
  EXPECT_NE(stats->find("wire.op.ping.us"), std::string::npos);
  EXPECT_NE(stats->find("wire.op.commit.us"), std::string::npos);
  EXPECT_NE(stats->find("server.sessions.active"), std::string::npos);
  EXPECT_TRUE(client.ResetStats().ok());
  auto after = client.FetchStats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->find("wire.op.ping.us"), std::string::npos);

  client.Disconnect();
  server.Stop();
  obs::MetricsRegistry::Instance().Disable();
}

}  // namespace
}  // namespace tdb::server
