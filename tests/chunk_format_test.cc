// Unit tests for the chunk store's building blocks: ids, descriptors, map
// chunks, partition leaders, the log format (version headers and unnamed
// chunk records), the descriptor cache, and the validators.

#include <gtest/gtest.h>

#include "src/chunk/chunk_map.h"
#include "src/chunk/descriptor.h"
#include "src/chunk/log_format.h"
#include "src/chunk/log_manager.h"
#include "src/chunk/validator.h"
#include "src/platform/trusted_store.h"

namespace tdb {
namespace {

CryptoSuite SystemSuite() {
  return *CryptoSuite::Create(
      CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 0xAA)});
}

TEST(ChunkIdTest, PackUnpackRoundTrip) {
  ChunkId id(0x1234, 7, 0x123456789AULL);
  ChunkId back = ChunkId::Unpack(id.Pack());
  EXPECT_EQ(back, id);
  EXPECT_EQ(back.partition, 0x1234);
  EXPECT_EQ(back.position.height, 7);
  EXPECT_EQ(back.position.rank, 0x123456789AULL);
}

TEST(ChunkIdTest, ParentAndSlot) {
  ChunkPosition pos(0, 130);
  EXPECT_EQ(pos.Parent(), ChunkPosition(1, 2));
  EXPECT_EQ(pos.SlotInParent(), 2u);
  ChunkPosition root_child(2, 63);
  EXPECT_EQ(root_child.Parent(), ChunkPosition(3, 0));
}

TEST(ChunkIdTest, ToStringFormat) {
  EXPECT_EQ(ChunkId(3, 1, 42).ToString(), "3:1.42");
  EXPECT_EQ(Location({5, 100}).ToString(), "5+100");
}

TEST(LocationTest, PackUnpack) {
  Location loc{0xDEAD, 0xBEEF};
  EXPECT_EQ(Location::Unpack(loc.Pack()), loc);
}

TEST(DescriptorTest, PickleRoundTripWritten) {
  Descriptor d;
  d.status = ChunkStatus::kWritten;
  d.location = {3, 777};
  d.stored_size = 1234;
  d.hash = Bytes(32, 0xCD);
  PickleWriter w;
  d.Pickle(w);
  PickleReader r(w.data());
  auto back = Descriptor::Unpickle(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, d);
}

TEST(DescriptorTest, PickleRoundTripFree) {
  Descriptor d;
  d.status = ChunkStatus::kFree;
  PickleWriter w;
  d.Pickle(w);
  PickleReader r(w.data());
  auto back = Descriptor::Unpickle(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status, ChunkStatus::kFree);
}

TEST(MapChunkTest, RoundTripWithMixedSlots) {
  MapChunk map;
  map.slots[0].status = ChunkStatus::kWritten;
  map.slots[0].location = {1, 2};
  map.slots[0].stored_size = 3;
  map.slots[0].hash = Bytes(20, 7);
  map.slots[5].status = ChunkStatus::kFree;
  Bytes pickled = map.Pickle();
  auto back = MapChunk::Unpickle(pickled);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->slots[0], map.slots[0]);
  EXPECT_EQ(back->slots[5].status, ChunkStatus::kFree);
  EXPECT_EQ(back->slots[63].status, ChunkStatus::kUnallocated);
}

TEST(MapChunkTest, RejectsTruncated) {
  MapChunk map;
  Bytes pickled = map.Pickle();
  pickled.resize(pickled.size() / 2);
  EXPECT_FALSE(MapChunk::Unpickle(pickled).ok());
}

TEST(PartitionLeaderTest, RoundTrip) {
  PartitionLeader leader;
  leader.params = CryptoParams{CipherAlg::kDes, HashAlg::kSha1, Bytes(8, 1)};
  leader.tree_height = 2;
  leader.root.status = ChunkStatus::kWritten;
  leader.root.location = {9, 9};
  leader.root.stored_size = 99;
  leader.root.hash = Bytes(20, 9);
  leader.num_positions = 1000;
  leader.free_ranks = {5, 17, 255};
  leader.copies = {7, 8};
  leader.copied_from = 3;
  auto back = PartitionLeader::UnpickleFromBytes(leader.PickleToBytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tree_height, 2);
  EXPECT_EQ(back->root, leader.root);
  EXPECT_EQ(back->num_positions, 1000u);
  EXPECT_EQ(back->free_ranks, leader.free_ranks);
  EXPECT_EQ(back->copies, leader.copies);
  EXPECT_EQ(back->copied_from, 3);
}

TEST(PartitionLeaderTest, HeightFor) {
  EXPECT_EQ(PartitionLeader::HeightFor(0), 0);
  EXPECT_EQ(PartitionLeader::HeightFor(1), 1);
  EXPECT_EQ(PartitionLeader::HeightFor(64), 1);
  EXPECT_EQ(PartitionLeader::HeightFor(65), 2);
  EXPECT_EQ(PartitionLeader::HeightFor(64 * 64), 2);
  EXPECT_EQ(PartitionLeader::HeightFor(64 * 64 + 1), 3);
}

TEST(LogFormatTest, NamedHeaderRoundTrip) {
  CryptoSuite suite = SystemSuite();
  VersionHeader header = VersionHeader::Named(ChunkId(9, 2, 500), 4321);
  Bytes ct = EncodeHeader(suite, header);
  EXPECT_EQ(ct.size(), HeaderCipherSize(suite));
  auto back = DecodeHeader(suite, ct);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->unnamed);
  EXPECT_EQ(back->id, ChunkId(9, 2, 500));
  EXPECT_EQ(back->body_size, 4321u);
}

TEST(LogFormatTest, UnnamedHeaderRoundTrip) {
  CryptoSuite suite = SystemSuite();
  for (UnnamedType type : {UnnamedType::kDeallocate, UnnamedType::kCommit,
                           UnnamedType::kNextSegment, UnnamedType::kCleaner}) {
    Bytes ct = EncodeHeader(suite, VersionHeader::Unnamed(type, 7));
    auto back = DecodeHeader(suite, ct);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->unnamed);
    EXPECT_EQ(back->type, type);
    EXPECT_EQ(back->body_size, 7u);
  }
}

TEST(LogFormatTest, GarbledHeaderRejected) {
  CryptoSuite suite = SystemSuite();
  Bytes ct = EncodeHeader(suite, VersionHeader::Named(ChunkId(1, 0, 1), 10));
  ct.back() ^= 0xFF;  // garble the last ciphertext block entirely
  auto back = DecodeHeader(suite, ct);
  // Either decryption padding fails or the decoded type/height is invalid —
  // in any case, not silently accepted as the original.
  if (back.ok()) {
    EXPECT_FALSE(!back->unnamed && back->id == ChunkId(1, 0, 1) &&
                 back->body_size == 10);
  }
}

TEST(LogFormatTest, CommitRecordSignatureBindsFields) {
  CryptoSuite suite = SystemSuite();
  CommitRecord record;
  record.count = 42;
  record.set_digest = Bytes(32, 0x11);
  record.Sign(suite);
  EXPECT_TRUE(record.VerifySignature(suite));
  CommitRecord forged = record;
  forged.count = 43;
  EXPECT_FALSE(forged.VerifySignature(suite));
  CommitRecord forged2 = record;
  forged2.set_digest[0] ^= 1;
  EXPECT_FALSE(forged2.VerifySignature(suite));
  // Round trip preserves the signature.
  auto back = CommitRecord::Unpickle(record.Pickle());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->VerifySignature(suite));
}

TEST(LogFormatTest, DeallocateRecordRoundTrip) {
  DeallocateRecord record;
  record.chunks = {ChunkId(1, 0, 5), ChunkId(2, 0, 9)};
  record.partitions = {4, 5};
  auto back = DeallocateRecord::Unpickle(record.Pickle());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->chunks, record.chunks);
  EXPECT_EQ(back->partitions, record.partitions);
}

TEST(LogFormatTest, CleanerRecordRoundTrip) {
  CleanerRecord record;
  CleanerEntry entry;
  entry.original_id = ChunkId(3, 0, 12);
  entry.current_in = {3, 7, 9};
  entry.new_location = {5, 1000};
  entry.stored_size = 640;
  record.entries.push_back(entry);
  auto back = CleanerRecord::Unpickle(record.Pickle());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->entries.size(), 1u);
  EXPECT_EQ(back->entries[0].original_id, entry.original_id);
  EXPECT_EQ(back->entries[0].current_in, entry.current_in);
  EXPECT_EQ(back->entries[0].new_location, entry.new_location);
  EXPECT_EQ(back->entries[0].stored_size, 640u);
}

TEST(SystemLeaderRecordTest, RoundTrip) {
  SystemLeaderRecord record;
  record.system_tree.params =
      CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)};
  record.system_tree.num_positions = 5;
  record.segments.resize(4);
  record.segments[1].state = SegmentInfo::State::kLive;
  record.segments[1].bytes_used = 100;
  record.segments[1].live_bytes = 60;
  record.segments[2].state = SegmentInfo::State::kCleaned;
  record.commit_count = 77;
  auto back = SystemLeaderRecord::Unpickle(record.Pickle());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->commit_count, 77u);
  ASSERT_EQ(back->segments.size(), 4u);
  EXPECT_EQ(back->segments[1].state, SegmentInfo::State::kLive);
  EXPECT_EQ(back->segments[1].bytes_used, 100u);
  EXPECT_EQ(back->segments[2].state, SegmentInfo::State::kCleaned);
}

// --- descriptor cache ---

Descriptor WrittenDesc(uint32_t seg) {
  Descriptor d;
  d.status = ChunkStatus::kWritten;
  d.location = {seg, 0};
  d.stored_size = 10;
  d.hash = Bytes(4, static_cast<uint8_t>(seg));
  return d;
}

TEST(DescriptorCacheTest, CleanEvictionByLru) {
  DescriptorCache cache(2);
  cache.PutClean(ChunkId(1, 0, 1), WrittenDesc(1));
  cache.PutClean(ChunkId(1, 0, 2), WrittenDesc(2));
  (void)cache.Get(ChunkId(1, 0, 1));  // touch 1 so 2 becomes LRU
  cache.PutClean(ChunkId(1, 0, 3), WrittenDesc(3));
  EXPECT_TRUE(cache.Get(ChunkId(1, 0, 1)).has_value());
  EXPECT_FALSE(cache.Get(ChunkId(1, 0, 2)).has_value());
  EXPECT_TRUE(cache.Get(ChunkId(1, 0, 3)).has_value());
}

TEST(DescriptorCacheTest, DirtyEntriesAreNeverEvicted) {
  DescriptorCache cache(2);
  cache.PutDirty(ChunkId(1, 0, 1), WrittenDesc(1));
  cache.PutDirty(ChunkId(1, 0, 2), WrittenDesc(2));
  for (uint64_t r = 3; r < 20; ++r) {
    cache.PutClean(ChunkId(1, 0, r), WrittenDesc(static_cast<uint32_t>(r)));
  }
  EXPECT_TRUE(cache.Get(ChunkId(1, 0, 1)).has_value());
  EXPECT_TRUE(cache.Get(ChunkId(1, 0, 2)).has_value());
  EXPECT_EQ(cache.dirty_count(), 2u);
}

TEST(DescriptorCacheTest, PutCleanNeverDowngradesDirty) {
  DescriptorCache cache(8);
  cache.PutDirty(ChunkId(1, 0, 1), WrittenDesc(42));
  cache.PutClean(ChunkId(1, 0, 1), WrittenDesc(1));  // stale map content
  EXPECT_EQ(cache.Get(ChunkId(1, 0, 1))->location.segment, 42u);
  EXPECT_EQ(cache.dirty_count(), 1u);
}

TEST(DescriptorCacheTest, MarkCleanMovesToLru) {
  DescriptorCache cache(1);
  cache.PutDirty(ChunkId(1, 0, 1), WrittenDesc(1));
  cache.MarkClean(ChunkId(1, 0, 1));
  EXPECT_EQ(cache.dirty_count(), 0u);
  cache.PutClean(ChunkId(1, 0, 2), WrittenDesc(2));  // evicts entry 1
  EXPECT_FALSE(cache.Get(ChunkId(1, 0, 1)).has_value());
}

TEST(DescriptorCacheTest, DirtyQueriesFilterByPartitionAndHeight) {
  DescriptorCache cache(16);
  cache.PutDirty(ChunkId(1, 0, 1), WrittenDesc(1));
  cache.PutDirty(ChunkId(1, 1, 0), WrittenDesc(2));
  cache.PutDirty(ChunkId(2, 0, 7), WrittenDesc(3));
  auto entries = cache.DirtyEntries(1, 0);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, ChunkId(1, 0, 1));
  auto partitions = cache.DirtyPartitions(0);
  EXPECT_EQ(partitions, (std::vector<PartitionId>{1, 2}));
}

TEST(DescriptorCacheTest, DropPartitionRemovesAllEntries) {
  DescriptorCache cache(16);
  cache.PutDirty(ChunkId(1, 0, 1), WrittenDesc(1));
  cache.PutClean(ChunkId(1, 1, 0), WrittenDesc(2));
  cache.PutDirty(ChunkId(2, 0, 1), WrittenDesc(3));
  cache.DropPartition(1);
  EXPECT_FALSE(cache.Get(ChunkId(1, 0, 1)).has_value());
  EXPECT_FALSE(cache.Get(ChunkId(1, 1, 0)).has_value());
  EXPECT_TRUE(cache.Get(ChunkId(2, 0, 1)).has_value());
  EXPECT_EQ(cache.dirty_count(), 1u);
}

// --- validators ---

TEST(DirectHashValidatorTest, RegisterRoundTrip) {
  MemTamperResistantRegister reg;
  DirectHashValidator validator(&reg, HashAlg::kSha256);
  validator.Absorb(BytesFromString("log bytes"));
  ASSERT_TRUE(validator.WriteRegister({1, 100}, {2, 200}).ok());
  auto state = validator.ReadRegister();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->head, (Location{1, 100}));
  EXPECT_EQ(state->tail, (Location{2, 200}));
  EXPECT_EQ(state->digest, validator.CurrentDigest());
}

TEST(DirectHashValidatorTest, CurrentDigestDoesNotDisturbStream) {
  MemTamperResistantRegister reg;
  DirectHashValidator validator(&reg, HashAlg::kSha256);
  validator.Absorb(BytesFromString("abc"));
  Bytes d1 = validator.CurrentDigest();
  Bytes d2 = validator.CurrentDigest();
  EXPECT_EQ(d1, d2);
  validator.Absorb(BytesFromString("def"));
  EXPECT_NE(validator.CurrentDigest(), d1);
  // Equivalent one-shot hash.
  EXPECT_EQ(validator.CurrentDigest(),
            HashData(HashAlg::kSha256, BytesFromString("abcdef")));
}

TEST(CounterValidatorTest, FlushBatchesByDeltaUt) {
  MemMonotonicCounter counter;
  CounterValidator validator(&counter, /*delta_ut=*/3);
  ASSERT_TRUE(validator.Init(0).ok());
  for (int i = 0; i < 2; ++i) {
    validator.NextCount();
    ASSERT_TRUE(validator.MaybeFlush(false).ok());
  }
  EXPECT_EQ(*counter.Read(), 0u);  // lag below delta_ut
  validator.NextCount();
  ASSERT_TRUE(validator.MaybeFlush(false).ok());
  EXPECT_EQ(*counter.Read(), 3u);
  validator.NextCount();
  ASSERT_TRUE(validator.MaybeFlush(true).ok());  // forced
  EXPECT_EQ(*counter.Read(), 4u);
}

TEST(CounterValidatorTest, RecoveryWindows) {
  MemMonotonicCounter counter;
  ASSERT_TRUE(counter.AdvanceTo(10).ok());
  {
    CounterValidator validator(&counter, /*delta_ut=*/2);
    ASSERT_TRUE(validator.Init(10).ok());
    // Log ahead within delta_ut: OK, counter resynchronizes.
    ASSERT_TRUE(validator.RecoveryCheck(12, /*delta_tu=*/0).ok());
    EXPECT_EQ(*counter.Read(), 12u);
  }
  {
    CounterValidator validator(&counter, /*delta_ut=*/2);
    ASSERT_TRUE(validator.Init(12).ok());
    // Log too far ahead: tampering.
    EXPECT_EQ(validator.RecoveryCheck(15, 0).code(),
              StatusCode::kTamperDetected);
    // Log behind with delta_tu = 0: replay/truncation.
    EXPECT_EQ(validator.RecoveryCheck(11, 0).code(),
              StatusCode::kTamperDetected);
    // Log behind within delta_tu: tolerated.
    EXPECT_TRUE(validator.RecoveryCheck(11, 1).ok());
  }
}

}  // namespace
}  // namespace tdb
