// Tests for the collection store: collection lifecycle, functional indexes
// (sorted and unsorted), automatic index maintenance on insert / update /
// remove, dynamic index add/drop with backfill, and iterators.

#include <gtest/gtest.h>

#include "src/collect/collection_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

// A digital good with a price, the kind of object the vending workload uses.
class Good final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 200;

  Good() = default;
  Good(std::string title, uint64_t price) : title(std::move(title)), price(price) {}

  std::string title;
  uint64_t price = 0;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override {
    w.WriteString(title);
    w.WriteVarint(price);
  }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto good = std::make_shared<Good>();
    good->title = r.ReadString();
    good->price = r.ReadVarint();
    return ObjectPtr(good);
  }
};

const Good& AsGood(const ObjectPtr& object) {
  return dynamic_cast<const Good&>(*object);
}

class CollectionStoreTest : public ::testing::Test {
 protected:
  CollectionStoreTest()
      : store_({.segment_size = 8192, .num_segments = 512}),
        secret_(Bytes(32, 0xA5)) {
    options_.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
    EXPECT_TRUE(RegisterType<Good>(registry_).ok());
    EXPECT_TRUE(CollectionStore::RegisterTypes(registry_).ok());
    EXPECT_TRUE(key_fns_
                    .Register("good.title",
                              [](const Pickled& object) -> Result<Bytes> {
                                return EncodeStringKey(
                                    dynamic_cast<const Good&>(object).title);
                              })
                    .ok());
    EXPECT_TRUE(key_fns_
                    .Register("good.price",
                              [](const Pickled& object) -> Result<Bytes> {
                                return EncodeU64Key(
                                    dynamic_cast<const Good&>(object).price);
                              })
                    .ok());

    auto pid = chunks_->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)});
    EXPECT_TRUE(chunks_->Commit(std::move(batch)).ok());
    objects_ = std::make_unique<ObjectStore>(chunks_.get(), *pid, &registry_);
    auto txn = objects_->Begin();
    auto dir = CollectionStore::Format(*txn);
    EXPECT_TRUE(dir.ok());
    EXPECT_TRUE(txn->Commit().ok());
    collections_ = std::make_unique<CollectionStore>(objects_.get(), &key_fns_,
                                                     *dir);
  }

  ObjectId MakeCatalog() {
    auto txn = objects_->Begin();
    auto id = collections_->CreateCollection(
        *txn, "catalog",
        {{"by_title", "good.title", /*sorted=*/false},
         {"by_price", "good.price", /*sorted=*/true}});
    EXPECT_TRUE(id.ok()) << id.status();
    EXPECT_TRUE(txn->Commit().ok());
    return *id;
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions options_;
  TypeRegistry registry_;
  KeyFunctionRegistry key_fns_;
  std::unique_ptr<ChunkStore> chunks_;
  std::unique_ptr<ObjectStore> objects_;
  std::unique_ptr<CollectionStore> collections_;
};

TEST_F(CollectionStoreTest, CreateAndFindCollection) {
  ObjectId catalog = MakeCatalog();
  auto txn = objects_->Begin();
  auto found = collections_->FindCollection(*txn, "catalog");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, catalog);
  EXPECT_EQ(collections_->FindCollection(*txn, "nope").status().code(),
            StatusCode::kNotFound);
  auto names = collections_->ListCollections(*txn);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"catalog"});
}

TEST_F(CollectionStoreTest, DuplicateCollectionRejected) {
  MakeCatalog();
  auto txn = objects_->Begin();
  EXPECT_EQ(
      collections_->CreateCollection(*txn, "catalog").status().code(),
      StatusCode::kAlreadyExists);
}

TEST_F(CollectionStoreTest, InsertAndExactLookup) {
  ObjectId catalog = MakeCatalog();
  auto txn = objects_->Begin();
  ASSERT_TRUE(collections_
                  ->Insert(*txn, catalog, std::make_shared<Good>("sonata", 500))
                  .ok());
  ASSERT_TRUE(collections_
                  ->Insert(*txn, catalog, std::make_shared<Good>("quartet", 300))
                  .ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto txn2 = objects_->Begin();
  auto hits = collections_->LookupExact(*txn2, catalog, "by_title",
                                        EncodeStringKey("sonata"));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(AsGood(*txn2->Get((*hits)[0])).price, 500u);
}

TEST_F(CollectionStoreTest, RangeLookupOnSortedIndex) {
  ObjectId catalog = MakeCatalog();
  auto txn = objects_->Begin();
  for (uint64_t price : {100u, 250u, 400u, 550u, 700u}) {
    ASSERT_TRUE(collections_
                    ->Insert(*txn, catalog,
                             std::make_shared<Good>(
                                 "good" + std::to_string(price), price))
                    .ok());
  }
  ASSERT_TRUE(txn->Commit().ok());

  auto txn2 = objects_->Begin();
  auto hits = collections_->LookupRange(*txn2, catalog, "by_price",
                                        EncodeU64Key(200), EncodeU64Key(600));
  ASSERT_TRUE(hits.ok());
  std::vector<uint64_t> prices;
  for (ObjectId id : *hits) {
    prices.push_back(AsGood(*txn2->Get(id)).price);
  }
  EXPECT_EQ(prices, (std::vector<uint64_t>{250, 400, 550}));
}

TEST_F(CollectionStoreTest, RangeOnUnsortedIndexRejected) {
  ObjectId catalog = MakeCatalog();
  auto txn = objects_->Begin();
  EXPECT_EQ(collections_
                ->LookupRange(*txn, catalog, "by_title", EncodeStringKey("a"),
                              EncodeStringKey("z"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CollectionStoreTest, UpdateMovesIndexEntries) {
  ObjectId catalog = MakeCatalog();
  ObjectId good_id;
  {
    auto txn = objects_->Begin();
    good_id = *collections_->Insert(*txn, catalog,
                                    std::make_shared<Good>("opus", 100));
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = objects_->Begin();
    ASSERT_TRUE(collections_
                    ->Update(*txn, catalog, good_id,
                             std::make_shared<Good>("opus", 900))
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = objects_->Begin();
  EXPECT_TRUE(collections_
                  ->LookupRange(*txn, catalog, "by_price", EncodeU64Key(0),
                                EncodeU64Key(200))
                  ->empty());
  auto hits = collections_->LookupRange(*txn, catalog, "by_price",
                                        EncodeU64Key(800), EncodeU64Key(1000));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(CollectionStoreTest, RemoveDropsMemberAndIndexEntries) {
  ObjectId catalog = MakeCatalog();
  ObjectId good_id;
  {
    auto txn = objects_->Begin();
    good_id = *collections_->Insert(*txn, catalog,
                                    std::make_shared<Good>("temp", 42));
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = objects_->Begin();
    ASSERT_TRUE(collections_->Remove(*txn, catalog, good_id).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = objects_->Begin();
  EXPECT_TRUE(collections_->Scan(*txn, catalog)->empty());
  EXPECT_TRUE(collections_
                  ->LookupExact(*txn, catalog, "by_title",
                                EncodeStringKey("temp"))
                  ->empty());
  EXPECT_EQ(txn->Get(good_id).status().code(), StatusCode::kNotFound);
}

TEST_F(CollectionStoreTest, AddIndexBackfillsExistingMembers) {
  auto txn = objects_->Begin();
  auto catalog = collections_->CreateCollection(*txn, "plain");
  ASSERT_TRUE(catalog.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(collections_
                    ->Insert(*txn, *catalog,
                             std::make_shared<Good>("g" + std::to_string(i),
                                                    i * 10))
                    .ok());
  }
  ASSERT_TRUE(collections_
                  ->AddIndex(*txn, *catalog, {"by_price", "good.price", true})
                  .ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto txn2 = objects_->Begin();
  auto hits = collections_->LookupRange(*txn2, *catalog, "by_price",
                                        EncodeU64Key(10), EncodeU64Key(30));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 3u);
}

TEST_F(CollectionStoreTest, DropIndexRemovesIt) {
  ObjectId catalog = MakeCatalog();
  auto txn = objects_->Begin();
  ASSERT_TRUE(collections_->DropIndex(*txn, catalog, "by_price").ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto txn2 = objects_->Begin();
  EXPECT_EQ(collections_
                ->LookupRange(*txn2, catalog, "by_price", EncodeU64Key(0),
                              EncodeU64Key(10))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(CollectionStoreTest, ScanReturnsAllMembers) {
  ObjectId catalog = MakeCatalog();
  auto txn = objects_->Begin();
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(collections_
                    ->Insert(*txn, catalog,
                             std::make_shared<Good>("g" + std::to_string(i), i))
                    .ok());
  }
  ASSERT_TRUE(txn->Commit().ok());
  auto txn2 = objects_->Begin();
  EXPECT_EQ(collections_->Scan(*txn2, catalog)->size(), 7u);
}

TEST_F(CollectionStoreTest, EverythingSurvivesRestart) {
  ObjectId catalog = MakeCatalog();
  ObjectId dir_id = collections_->directory_id();
  {
    auto txn = objects_->Begin();
    ASSERT_TRUE(collections_
                    ->Insert(*txn, catalog, std::make_shared<Good>("durable", 5))
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  PartitionId pid = objects_->partition();
  collections_.reset();
  objects_.reset();
  chunks_.reset();

  auto reopened = ChunkStore::Open(
      &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ObjectStore objects2(reopened->get(), pid, &registry_);
  CollectionStore collections2(&objects2, &key_fns_, dir_id);
  auto txn = objects2.Begin();
  auto found = collections2.FindCollection(*txn, "catalog");
  ASSERT_TRUE(found.ok());
  auto hits = collections2.LookupExact(*txn, *found, "by_title",
                                       EncodeStringKey("durable"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(CollectionStoreTest, IndexUpdatesRollBackWithTransaction) {
  ObjectId catalog = MakeCatalog();
  {
    auto txn = objects_->Begin();
    ASSERT_TRUE(collections_
                    ->Insert(*txn, catalog,
                             std::make_shared<Good>("phantom", 666))
                    .ok());
    txn->Abort();
  }
  auto txn = objects_->Begin();
  EXPECT_TRUE(collections_
                  ->LookupExact(*txn, catalog, "by_title",
                                EncodeStringKey("phantom"))
                  ->empty());
  EXPECT_TRUE(collections_->Scan(*txn, catalog)->empty());
}

}  // namespace
}  // namespace tdb
