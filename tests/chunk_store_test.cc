// Integration-level tests for the chunk store: basic operations, atomic
// commits, checkpointing, crash recovery, tamper detection (including replay
// attacks), partitions, copy-on-write snapshots, diffs, and cleaning.
//
// Most tests are parameterized over both validation modes (§4.8.2).

#include <gtest/gtest.h>

#include <memory>

#include "src/chunk/chunk_store.h"
#include "src/common/rng.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

CryptoParams TestPartitionParams(uint8_t key_fill = 0x11) {
  CryptoParams params;
  params.cipher = CipherAlg::kAes128;
  params.hash = HashAlg::kSha256;
  params.key = Bytes(16, key_fill);
  return params;
}

// A self-contained TDB "machine": untrusted store + trusted stores. Supports
// crash-restart cycles: the trusted stores persist across Reopen, and Crash
// drops unflushed untrusted writes.
class TestRig {
 public:
  explicit TestRig(ValidationMode mode, UntrustedStoreOptions store_options =
                                            {.segment_size = 8192,
                                             .num_segments = 256}) {
    store_ = std::make_unique<MemUntrustedStore>(store_options);
    secret_ = std::make_unique<MemSecretStore>(Bytes(32, 0xA5));
    reg_ = std::make_unique<MemTamperResistantRegister>();
    counter_ = std::make_unique<MemMonotonicCounter>();
    options_.validation.mode = mode;
  }

  TrustedServices trusted() {
    return TrustedServices{secret_.get(), reg_.get(), counter_.get()};
  }

  Result<std::unique_ptr<ChunkStore>> Create() {
    return ChunkStore::Create(store_.get(), trusted(), options_);
  }
  Result<std::unique_ptr<ChunkStore>> Open() {
    return ChunkStore::Open(store_.get(), trusted(), options_);
  }

  MemUntrustedStore& store() { return *store_; }
  ChunkStoreOptions& options() { return options_; }

 private:
  std::unique_ptr<MemUntrustedStore> store_;
  std::unique_ptr<MemSecretStore> secret_;
  std::unique_ptr<MemTamperResistantRegister> reg_;
  std::unique_ptr<MemMonotonicCounter> counter_;
  ChunkStoreOptions options_;
};

class ChunkStoreTest : public ::testing::TestWithParam<ValidationMode> {
 protected:
  TestRig rig_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(BothModes, ChunkStoreTest,
                         ::testing::Values(ValidationMode::kCounter,
                                           ValidationMode::kDirectHash),
                         [](const auto& info) {
                           return info.param == ValidationMode::kCounter
                                      ? "Counter"
                                      : "DirectHash";
                         });

// Creates a partition through the standard allocate + commit protocol.
PartitionId MakePartition(ChunkStore& cs, uint8_t key_fill = 0x11) {
  auto pid = cs.AllocatePartition();
  EXPECT_TRUE(pid.ok());
  ChunkStore::Batch batch;
  batch.WritePartition(*pid, TestPartitionParams(key_fill));
  EXPECT_TRUE(cs.Commit(std::move(batch)).ok());
  return *pid;
}

TEST_P(ChunkStoreTest, WriteAndReadBack) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  auto id = (*cs)->AllocateChunk(p);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*cs)->WriteChunk(*id, BytesFromString("hello, tdb")).ok());
  auto back = (*cs)->Read(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, BytesFromString("hello, tdb"));
}

TEST_P(ChunkStoreTest, RewriteChangesStateAndSize) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("short")).ok());
  Bytes longer(3000, 'z');
  ASSERT_TRUE((*cs)->WriteChunk(id, longer).ok());
  EXPECT_EQ(*(*cs)->Read(id), longer);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("s")).ok());
  EXPECT_EQ(*(*cs)->Read(id), BytesFromString("s"));
}

TEST_P(ChunkStoreTest, ReadOfUnwrittenChunkFails) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  EXPECT_EQ((*cs)->Read(id).status().code(), StatusCode::kNotFound);
}

TEST_P(ChunkStoreTest, WriteOfUnallocatedChunkFails) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId bogus(p, 0, 999);
  EXPECT_EQ((*cs)->WriteChunk(bogus, BytesFromString("x")).code(),
            StatusCode::kNotFound);
}

TEST_P(ChunkStoreTest, MultiChunkCommitIsVisibleTogether) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  std::vector<ChunkId> ids;
  ChunkStore::Batch batch;
  for (int i = 0; i < 10; ++i) {
    ChunkId id = *(*cs)->AllocateChunk(p);
    ids.push_back(id);
    batch.WriteChunk(id, BytesFromString("chunk " + std::to_string(i)));
  }
  ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*(*cs)->Read(ids[i]),
              BytesFromString("chunk " + std::to_string(i)));
  }
}

TEST_P(ChunkStoreTest, DeallocatedIdIsReused) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("v1")).ok());
  ASSERT_TRUE((*cs)->DeallocateChunk(id).ok());
  EXPECT_EQ((*cs)->Read(id).status().code(), StatusCode::kNotFound);
  ChunkId again = *(*cs)->AllocateChunk(p);
  EXPECT_EQ(again, id);  // the freed rank comes back
  ASSERT_TRUE((*cs)->WriteChunk(again, BytesFromString("v2")).ok());
  EXPECT_EQ(*(*cs)->Read(again), BytesFromString("v2"));
}

TEST_P(ChunkStoreTest, DeallocateOfUnwrittenFails) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  EXPECT_EQ((*cs)->DeallocateChunk(id).code(), StatusCode::kNotFound);
}

TEST_P(ChunkStoreTest, SurvivesCheckpointAndReopen) {
  std::vector<ChunkId> ids;
  {
    auto cs = rig_.Create();
    ASSERT_TRUE(cs.ok());
    PartitionId p = MakePartition(**cs);
    for (int i = 0; i < 20; ++i) {
      ChunkId id = *(*cs)->AllocateChunk(p);
      ids.push_back(id);
      ASSERT_TRUE(
          (*cs)->WriteChunk(id, BytesFromString("data" + std::to_string(i)))
              .ok());
    }
    ASSERT_TRUE((*cs)->Checkpoint().ok());
  }
  auto cs = rig_.Open();
  ASSERT_TRUE(cs.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*(*cs)->Read(ids[i]), BytesFromString("data" + std::to_string(i)));
  }
}

TEST_P(ChunkStoreTest, RecoversResidualLogAfterRestart) {
  std::vector<ChunkId> ids;
  {
    auto cs = rig_.Create();
    ASSERT_TRUE(cs.ok());
    PartitionId p = MakePartition(**cs);
    ChunkId pre = *(*cs)->AllocateChunk(p);
    ids.push_back(pre);
    ASSERT_TRUE((*cs)->WriteChunk(pre, BytesFromString("pre-ckpt")).ok());
    ASSERT_TRUE((*cs)->Checkpoint().ok());
    // These commits live only in the residual log.
    for (int i = 0; i < 15; ++i) {
      ChunkId id = *(*cs)->AllocateChunk(p);
      ids.push_back(id);
      ASSERT_TRUE(
          (*cs)->WriteChunk(id, BytesFromString("post" + std::to_string(i)))
              .ok());
    }
    ASSERT_TRUE((*cs)->WriteChunk(pre, BytesFromString("rewritten")).ok());
  }
  auto cs = rig_.Open();
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*(*cs)->Read(ids[0]), BytesFromString("rewritten"));
  for (int i = 1; i <= 15; ++i) {
    EXPECT_EQ(*(*cs)->Read(ids[i]),
              BytesFromString("post" + std::to_string(i - 1)));
  }
}

TEST_P(ChunkStoreTest, DeallocationSurvivesRestart) {
  TestRig& rig = rig_;
  ChunkId id;
  PartitionId p;
  {
    auto cs = rig.Create();
    ASSERT_TRUE(cs.ok());
    p = MakePartition(**cs);
    id = *(*cs)->AllocateChunk(p);
    ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("doomed")).ok());
    ASSERT_TRUE((*cs)->Checkpoint().ok());
    ASSERT_TRUE((*cs)->DeallocateChunk(id).ok());
  }
  auto cs = rig.Open();
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ((*cs)->Read(id).status().code(), StatusCode::kNotFound);
  // The freed id must be available again.
  ChunkId again = *(*cs)->AllocateChunk(p);
  EXPECT_EQ(again, id);
}

TEST_P(ChunkStoreTest, GrowsBeyondOneMapChunk) {
  // More data chunks than the map fanout forces a two-level tree.
  std::vector<ChunkId> ids;
  {
    auto cs = rig_.Create();
    ASSERT_TRUE(cs.ok());
    PartitionId p = MakePartition(**cs);
    for (uint64_t i = 0; i < kMapFanout * 2 + 5; ++i) {
      ChunkId id = *(*cs)->AllocateChunk(p);
      ids.push_back(id);
      ASSERT_TRUE(
          (*cs)->WriteChunk(id, BytesFromString("v" + std::to_string(i))).ok());
    }
    ASSERT_TRUE((*cs)->Checkpoint().ok());
  }
  auto cs = rig_.Open();
  ASSERT_TRUE(cs.ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(*(*cs)->Read(ids[i]), BytesFromString("v" + std::to_string(i)));
  }
}

TEST_P(ChunkStoreTest, TamperWithChunkBodyIsDetected) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, Bytes(500, 'd')).ok());
  auto loc = (*cs)->DebugChunkLocation(id);
  ASSERT_TRUE(loc.ok());
  // Flip a byte in the middle of the stored version (inside the body).
  rig_.store().CorruptByte(loc->first.segment,
                           loc->first.offset + loc->second / 2, 0x01);
  EXPECT_EQ((*cs)->Read(id).status().code(), StatusCode::kTamperDetected);
}

TEST_P(ChunkStoreTest, TamperWithHeaderIsDetected) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, Bytes(100, 'h')).ok());
  auto loc = (*cs)->DebugChunkLocation(id);
  ASSERT_TRUE(loc.ok());
  // Corrupt the last byte of the header ciphertext: CBC garbles the whole
  // final plaintext block, so the decoded position/size cannot match.
  // (Flipping an IV byte that only lands in the header's partition field is
  // tolerated by design — copies share versions across partitions and the
  // body hash is what binds content.)
  uint32_t header_size =
      static_cast<uint32_t>(HeaderCipherSize((*cs)->system_suite()));
  rig_.store().CorruptByte(loc->first.segment,
                           loc->first.offset + header_size - 1, 0x80);
  EXPECT_EQ((*cs)->Read(id).status().code(), StatusCode::kTamperDetected);
}

TEST_P(ChunkStoreTest, TamperWithMapChunkIsDetectedAfterReopen) {
  ChunkId id;
  Location map_loc;
  uint32_t map_size = 0;
  {
    auto cs = rig_.Create();
    ASSERT_TRUE(cs.ok());
    PartitionId p = MakePartition(**cs);
    id = *(*cs)->AllocateChunk(p);
    ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("payload")).ok());
    ASSERT_TRUE((*cs)->Checkpoint().ok());
    auto loc = (*cs)->DebugChunkLocation(ChunkId(p, 1, 0));
    ASSERT_TRUE(loc.ok());
    map_loc = loc->first;
    map_size = loc->second;
  }
  // Attack the map chunk (metadata!) while the store is offline.
  rig_.store().CorruptByte(map_loc.segment, map_loc.offset + map_size - 1,
                           0xFF);
  auto cs = rig_.Open();
  // The map chunk is in the checkpointed log, so opening succeeds but the
  // read through the tampered map must fail.
  if (cs.ok()) {
    EXPECT_EQ((*cs)->Read(id).status().code(), StatusCode::kTamperDetected);
  } else {
    EXPECT_EQ(cs.status().code(), StatusCode::kTamperDetected);
  }
}

TEST_P(ChunkStoreTest, ReplayOfOldStoreStateIsDetected) {
  // The headline attack (§1): save a copy of the database, make purchases,
  // restore the copy to roll back the payments.
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("balance=100")).ok());

  // Snapshot the *entire* untrusted store.
  std::vector<Bytes> segments;
  for (uint32_t s = 0; s < rig_.store().num_segments(); ++s) {
    segments.push_back(rig_.store().DumpSegment(s));
  }
  Bytes superblock = rig_.store().DumpSuperblock();

  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("balance=0")).ok());
  cs->reset();  // close

  // Replay: restore the old store contents wholesale.
  for (uint32_t s = 0; s < rig_.store().num_segments(); ++s) {
    rig_.store().RestoreSegment(s, segments[s]);
  }
  rig_.store().RestoreSuperblock(superblock);

  auto replayed = rig_.Open();
  if (replayed.ok()) {
    // If open somehow succeeded, the read must not reveal the stale balance
    // as valid.
    auto read = (*replayed)->Read(id);
    ASSERT_FALSE(read.ok() && *read == BytesFromString("balance=100"))
        << "replay attack succeeded!";
  } else {
    EXPECT_EQ(replayed.status().code(), StatusCode::kTamperDetected);
  }
}

TEST_P(ChunkStoreTest, TruncatedResidualLogIsDetected) {
  // Deleting committed data from the log tail must be caught (delta = 0).
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("v1")).ok());

  std::vector<Bytes> segments;
  for (uint32_t s = 0; s < rig_.store().num_segments(); ++s) {
    segments.push_back(rig_.store().DumpSegment(s));
  }

  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("v2")).ok());
  cs->reset();

  // Restore only the log segments (not the superblock): this erases the last
  // commit set from the tail, keeping the same checkpoint.
  for (uint32_t s = 0; s < rig_.store().num_segments(); ++s) {
    rig_.store().RestoreSegment(s, segments[s]);
  }
  auto reopened = rig_.Open();
  if (reopened.ok()) {
    auto read = (*reopened)->Read(id);
    ASSERT_FALSE(read.ok() && *read == BytesFromString("v1"))
        << "tail deletion went unnoticed";
  } else {
    EXPECT_EQ(reopened.status().code(), StatusCode::kTamperDetected);
  }
}

TEST_P(ChunkStoreTest, PartitionsAreIsolated) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p1 = MakePartition(**cs, 0x11);
  PartitionId p2 = MakePartition(**cs, 0x22);
  ChunkId a = *(*cs)->AllocateChunk(p1);
  ChunkId b = *(*cs)->AllocateChunk(p2);
  // Same position, different partitions.
  EXPECT_EQ(a.position, b.position);
  ASSERT_TRUE((*cs)->WriteChunk(a, BytesFromString("in p1")).ok());
  ASSERT_TRUE((*cs)->WriteChunk(b, BytesFromString("in p2")).ok());
  EXPECT_EQ(*(*cs)->Read(a), BytesFromString("in p1"));
  EXPECT_EQ(*(*cs)->Read(b), BytesFromString("in p2"));
}

TEST_P(ChunkStoreTest, PartitionWithNullCipherAndSha1) {
  // The validated-chunk cache would (correctly) serve the pre-corruption
  // read's verified plaintext below; disable it so the second Read goes back
  // to the device and exercises detection.
  rig_.options().validated_cache_capacity = 0;
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  auto pid = (*cs)->AllocatePartition();
  ASSERT_TRUE(pid.ok());
  CryptoParams params;
  params.cipher = CipherAlg::kNone;
  params.hash = HashAlg::kSha1;
  ChunkStore::Batch batch;
  batch.WritePartition(*pid, params);
  ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  ChunkId id = *(*cs)->AllocateChunk(*pid);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("plain but hashed")).ok());
  EXPECT_EQ(*(*cs)->Read(id), BytesFromString("plain but hashed"));
  // Tamper detection still works without encryption.
  auto loc = (*cs)->DebugChunkLocation(id);
  ASSERT_TRUE(loc.ok());
  rig_.store().CorruptByte(loc->first.segment, loc->first.offset + loc->second - 1,
                           0x01);
  EXPECT_EQ((*cs)->Read(id).status().code(), StatusCode::kTamperDetected);
}

TEST_P(ChunkStoreTest, CopyOnWriteSnapshot) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  std::vector<ChunkId> ids;
  for (int i = 0; i < 10; ++i) {
    ChunkId id = *(*cs)->AllocateChunk(p);
    ids.push_back(id);
    ASSERT_TRUE(
        (*cs)->WriteChunk(id, BytesFromString("orig" + std::to_string(i))).ok());
  }
  // Snapshot.
  auto snap = (*cs)->AllocatePartition();
  ASSERT_TRUE(snap.ok());
  ChunkStore::Batch batch;
  batch.CopyPartition(*snap, p);
  ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());

  // Mutate the original.
  ASSERT_TRUE((*cs)->WriteChunk(ids[3], BytesFromString("mutated")).ok());
  ASSERT_TRUE((*cs)->DeallocateChunk(ids[7]).ok());

  // The snapshot still sees the old state.
  EXPECT_EQ(*(*cs)->Read(ChunkId(*snap, ids[3].position)),
            BytesFromString("orig3"));
  EXPECT_EQ(*(*cs)->Read(ChunkId(*snap, ids[7].position)),
            BytesFromString("orig7"));
  // The original sees the new state.
  EXPECT_EQ(*(*cs)->Read(ids[3]), BytesFromString("mutated"));
  EXPECT_EQ((*cs)->Read(ids[7]).status().code(), StatusCode::kNotFound);
}

TEST_P(ChunkStoreTest, SnapshotSurvivesRestart) {
  PartitionId p, snap;
  ChunkId id;
  {
    auto cs = rig_.Create();
    ASSERT_TRUE(cs.ok());
    p = MakePartition(**cs);
    id = *(*cs)->AllocateChunk(p);
    ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("before")).ok());
    snap = *(*cs)->AllocatePartition();
    ChunkStore::Batch batch;
    batch.CopyPartition(snap, p);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
    ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("after")).ok());
  }
  auto cs = rig_.Open();
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*(*cs)->Read(ChunkId(snap, id.position)), BytesFromString("before"));
  EXPECT_EQ(*(*cs)->Read(id), BytesFromString("after"));
}

TEST_P(ChunkStoreTest, DiffBetweenSnapshots) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  std::vector<ChunkId> ids;
  for (int i = 0; i < 8; ++i) {
    ChunkId id = *(*cs)->AllocateChunk(p);
    ids.push_back(id);
    ASSERT_TRUE(
        (*cs)->WriteChunk(id, BytesFromString("base" + std::to_string(i))).ok());
  }
  PartitionId snap1 = *(*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.CopyPartition(snap1, p);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  // Update 2, delete 1, add 1.
  ASSERT_TRUE((*cs)->WriteChunk(ids[1], BytesFromString("changed")).ok());
  ASSERT_TRUE((*cs)->WriteChunk(ids[4], BytesFromString("changed too")).ok());
  ASSERT_TRUE((*cs)->DeallocateChunk(ids[6]).ok());
  ChunkId added = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(added, BytesFromString("new")).ok());
  PartitionId snap2 = *(*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.CopyPartition(snap2, p);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  auto diff = (*cs)->Diff(snap1, snap2);
  ASSERT_TRUE(diff.ok());
  std::set<uint64_t> changed_ranks;
  for (const ChunkPosition& pos : *diff) {
    changed_ranks.insert(pos.rank);
  }
  std::set<uint64_t> expected = {ids[1].position.rank, ids[4].position.rank,
                                 ids[6].position.rank, added.position.rank};
  EXPECT_EQ(changed_ranks, expected);
}

TEST_P(ChunkStoreTest, DeallocatePartitionCascadesToCopies) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("x")).ok());
  PartitionId snap = *(*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.CopyPartition(snap, p);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  {
    ChunkStore::Batch batch;
    batch.DeallocatePartition(p);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  EXPECT_FALSE((*cs)->PartitionExists(p));
  EXPECT_FALSE((*cs)->PartitionExists(snap));
  EXPECT_FALSE((*cs)->Read(id).ok());
  EXPECT_FALSE((*cs)->Read(ChunkId(snap, id.position)).ok());
}

TEST_P(ChunkStoreTest, CleanerReclaimsSpaceAndPreservesData) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  // Fill several segments with churn: write then repeatedly overwrite.
  std::vector<ChunkId> ids;
  Rng rng(99);
  for (int i = 0; i < 30; ++i) {
    ids.push_back(*(*cs)->AllocateChunk(p));
  }
  for (int round = 0; round < 10; ++round) {
    ChunkStore::Batch batch;
    for (size_t i = 0; i < ids.size(); ++i) {
      batch.WriteChunk(ids[i], rng.NextBytes(400));
    }
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  // Final contents to verify later.
  std::vector<Bytes> expected;
  {
    ChunkStore::Batch batch;
    for (size_t i = 0; i < ids.size(); ++i) {
      expected.push_back(BytesFromString("final " + std::to_string(i)));
      batch.WriteChunk(ids[i], expected.back());
    }
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  ASSERT_TRUE((*cs)->Checkpoint().ok());
  uint64_t free_before = (*cs)->GetStats().free_segments;
  auto cleaned = (*cs)->Clean(1000);
  ASSERT_TRUE(cleaned.ok());
  EXPECT_GT(*cleaned, 0u);
  EXPECT_GT((*cs)->GetStats().free_segments, free_before);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(*(*cs)->Read(ids[i]), expected[i]);
  }
  // And everything still reads after a restart.
  cs->reset();
  auto reopened = rig_.Open();
  ASSERT_TRUE(reopened.ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(*(*reopened)->Read(ids[i]), expected[i]);
  }
}

TEST_P(ChunkStoreTest, CleanerPreservesSnapshotSharing) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  std::vector<ChunkId> ids;
  for (int i = 0; i < 20; ++i) {
    ChunkId id = *(*cs)->AllocateChunk(p);
    ids.push_back(id);
    ASSERT_TRUE(
        (*cs)->WriteChunk(id, BytesFromString("shared" + std::to_string(i)))
            .ok());
  }
  PartitionId snap = *(*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.CopyPartition(snap, p);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  // Overwrite everything in the live partition so the old versions are only
  // current in the snapshot, then churn to make segments cleanable.
  Rng rng(5);
  for (int round = 0; round < 8; ++round) {
    ChunkStore::Batch batch;
    for (const ChunkId& id : ids) {
      batch.WriteChunk(id, rng.NextBytes(300));
    }
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  ASSERT_TRUE((*cs)->Checkpoint().ok());
  ASSERT_TRUE((*cs)->Clean(1000).ok());
  // Snapshot data survived cleaning.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*(*cs)->Read(ChunkId(snap, ids[i].position)),
              BytesFromString("shared" + std::to_string(i)));
  }
}

// Regression: deallocating a copy used to leave a dangling entry in the
// source's copies list. The cleaner walks source→copies to decide whether a
// chunk version is still live, treated the broken walk as "owner
// deallocated", and reclaimed current chunks of the *surviving* source —
// surfaced by the workload torture harness as tamper-detected reads of
// acknowledged keys after backup-snapshot rotation.
TEST_P(ChunkStoreTest, CleanerKeepsLiveChunksAfterACopyIsDeallocated) {
  // The backup rotation pattern: every round takes a fresh snapshot, drops
  // the previous one, churns, checkpoints, and cleans. The rounds matter —
  // a mis-cleaned segment still holds its old bytes until it is *reused*,
  // so the corruption only becomes visible a few cycles in.
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  std::vector<ChunkId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(*(*cs)->AllocateChunk(p));
    ASSERT_TRUE((*cs)->WriteChunk(ids.back(), BytesFromString("v0")).ok());
  }
  Rng rng(17);
  PartitionId old_snap = 0;
  for (int round = 0; round < 12; ++round) {
    PartitionId snap = *(*cs)->AllocatePartition();
    {
      ChunkStore::Batch batch;
      batch.CopyPartition(snap, p);
      ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
    }
    if (old_snap != 0) {
      ChunkStore::Batch batch;
      batch.DeallocatePartition(old_snap);
      ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
    }
    old_snap = snap;
    for (int b = 0; b < 4; ++b) {
      ChunkStore::Batch batch;
      for (size_t i = 0; i < ids.size(); i += 2) {
        batch.WriteChunk(ids[i], rng.NextBytes(300));
      }
      ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
    }
    ASSERT_TRUE((*cs)->Checkpoint().ok());
    ASSERT_TRUE((*cs)->Clean(2).ok());
    for (size_t i = 0; i < ids.size(); ++i) {
      auto body = (*cs)->Read(ids[i]);
      ASSERT_TRUE(body.ok())
          << "round " << round << " chunk " << i << ": " << body.status();
    }
  }
  EXPECT_GT((*cs)->GetStats().segments_cleaned, 0u);
}

// Same dangling-copies defect, seen from the deallocation validator: with a
// stale entry, deallocating the source partition failed its closure walk.
TEST_P(ChunkStoreTest, DeallocatingACopyDetachesItFromItsSource) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("x")).ok());
  PartitionId snap = *(*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.CopyPartition(snap, p);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  {
    ChunkStore::Batch batch;
    batch.DeallocatePartition(snap);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  {
    ChunkStore::Batch batch;
    batch.DeallocatePartition(p);
    EXPECT_TRUE((*cs)->Commit(std::move(batch)).ok())
        << "source still names its deallocated copy";
  }
  EXPECT_FALSE((*cs)->PartitionExists(p));
}

// And the recovery path: a copy deallocation replayed from the log (no
// intervening checkpoint) must detach from the source as well.
TEST_P(ChunkStoreTest, RecoveredCopyDeallocationDetachesFromItsSource) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("x")).ok());
  PartitionId snap = *(*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.CopyPartition(snap, p);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  ASSERT_TRUE((*cs)->Checkpoint().ok());
  {
    ChunkStore::Batch batch;
    batch.DeallocatePartition(snap);
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  cs->reset();  // restart: the deallocation above is replayed from the log
  auto reopened = rig_.Open();
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->PartitionExists(snap));
  {
    ChunkStore::Batch batch;
    batch.DeallocatePartition(p);
    EXPECT_TRUE((*reopened)->Commit(std::move(batch)).ok())
        << "recovered source still names its deallocated copy";
  }
}

TEST_P(ChunkStoreTest, AutoCheckpointTriggersOnDirtyThreshold) {
  rig_.options().checkpoint_dirty_threshold = 50;
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  uint64_t checkpoints_before = (*cs)->GetStats().checkpoints;
  for (int i = 0; i < 120; ++i) {
    ChunkId id = *(*cs)->AllocateChunk(p);
    ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("x")).ok());
  }
  EXPECT_GT((*cs)->GetStats().checkpoints, checkpoints_before);
}

TEST_P(ChunkStoreTest, StatsReportActivity) {
  auto cs = rig_.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  ASSERT_TRUE((*cs)->WriteChunk(id, Bytes(100, 'a')).ok());
  auto stats = (*cs)->GetStats();
  EXPECT_GE(stats.commits, 2u);  // partition write + chunk write
  EXPECT_EQ(stats.chunks_written, 1u);
  EXPECT_GE(stats.bytes_committed, 100u);
  EXPECT_GT(stats.live_log_bytes, 0u);
}

TEST(ChunkStoreCounterTest, UnflushedTailToleratedWithinDeltaTu) {
  // Model a lazy untrusted store: commits don't flush, the counter runs
  // ahead, and recovery accepts a log up to delta_tu commits behind.
  TestRig rig(ValidationMode::kCounter);
  rig.options().validation.flush_every_commit = false;
  rig.options().validation.delta_tu = 8;
  ChunkId id;
  {
    auto cs = rig.Create();
    ASSERT_TRUE(cs.ok());
    PartitionId p = MakePartition(**cs);
    id = *(*cs)->AllocateChunk(p);
    ASSERT_TRUE((*cs)->WriteChunk(id, BytesFromString("v1")).ok());
    ASSERT_TRUE((*cs)->Checkpoint().ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*cs)->WriteChunk(id, BytesFromString("v" + std::to_string(i + 2)))
              .ok());
    }
    // Crash with the last commits unflushed.
    rig.store().Crash();
  }
  auto cs = rig.Open();
  ASSERT_TRUE(cs.ok()) << cs.status();
  auto read = (*cs)->Read(id);
  ASSERT_TRUE(read.ok());
  // Some prefix of the history survived; it must be one of the versions.
  std::string got = StringFromBytes(*read);
  EXPECT_TRUE(got == "v1" || got == "v2" || got == "v3" || got == "v4") << got;
}

TEST(ChunkStoreCounterTest, DeltaUtBatchesCounterWrites) {
  TestRig rig(ValidationMode::kCounter);
  rig.options().validation.delta_ut = 5;
  auto cs = rig.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  // 10 commits with delta_ut=5 should write the counter roughly twice, not
  // ten times. We can't see the counter writes directly here, but recovery
  // must still succeed mid-window.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*cs)->WriteChunk(id, BytesFromString("v" + std::to_string(i))).ok());
  }
  cs->reset();
  auto reopened = rig.Open();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(*(*reopened)->Read(id), BytesFromString("v9"));
}

TEST(ChunkStoreEdgeTest, OutOfSpaceSurfacesCleanly) {
  TestRig rig(ValidationMode::kCounter,
              {.segment_size = 4096, .num_segments = 4});
  auto cs = rig.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  Status last = OkStatus();
  for (int i = 0; i < 100 && last.ok(); ++i) {
    auto id = (*cs)->AllocateChunk(p);
    if (!id.ok()) {
      last = id.status();
      break;
    }
    last = (*cs)->WriteChunk(*id, Bytes(1500, 'f'));
  }
  EXPECT_EQ(last.code(), StatusCode::kOutOfSpace);
}

TEST(ChunkStoreEdgeTest, OversizedChunkRejected) {
  TestRig rig(ValidationMode::kCounter,
              {.segment_size = 4096, .num_segments = 16});
  auto cs = rig.Create();
  ASSERT_TRUE(cs.ok());
  PartitionId p = MakePartition(**cs);
  ChunkId id = *(*cs)->AllocateChunk(p);
  EXPECT_EQ((*cs)->WriteChunk(id, Bytes(8192, 'x')).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tdb
