// Tests for the lock-free read path: read-only snapshot transactions
// (ObjectStore::BeginReadOnly) and the caches under them.
//
//  * isolation — a reader sees the state as of its Begin, not later commits;
//  * liveness — readers touch no LockManager state and never block writers;
//  * lifecycle — snapshots are shared while current, retired by the next
//    write commit, and their COW partition is deallocated when the last
//    reader drains;
//  * integrity — tampering with a snapshot chunk is still detected (the
//    lock-free path never skips validation for bytes it has not verified);
//  * caching — the validated-chunk cache serves repeat reads and is
//    invalidated by overwrites;
//  * a stress mix of readers, writers, and the cleaner (labeled tsan).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/object/object_store.h"
#include "src/obs/metrics.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

class Account final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 100;

  Account() = default;
  Account(std::string owner, int64_t balance)
      : owner(std::move(owner)), balance(balance) {}

  std::string owner;
  int64_t balance = 0;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override {
    w.WriteString(owner);
    w.WriteI64(balance);
  }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto account = std::make_shared<Account>();
    account->owner = r.ReadString();
    account->balance = r.ReadI64();
    return ObjectPtr(account);
  }
};

const Account& AsAccount(const ObjectPtr& object) {
  return dynamic_cast<const Account&>(*object);
}

class SnapshotReadTest : public ::testing::Test {
 protected:
  SnapshotReadTest()
      : store_({.segment_size = 16384, .num_segments = 1024}),
        secret_(Bytes(32, 0xA5)) {
    options_.validation.mode = ValidationMode::kCounter;
    options_.validated_cache_capacity = 64;  // small: exercise eviction
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
    EXPECT_TRUE(RegisterType<Account>(registry_).ok());
    auto pid = chunks_->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)});
    EXPECT_TRUE(chunks_->Commit(std::move(batch)).ok());
    partition_ = *pid;
    object_options_.lock_timeout = std::chrono::milliseconds(100);
    object_options_.cache_capacity = 32;  // small: force chunk reads
    objects_ = std::make_unique<ObjectStore>(chunks_.get(), partition_,
                                             &registry_, object_options_);
  }

  ObjectId MustInsert(const std::string& owner, int64_t balance) {
    auto txn = objects_->Begin();
    auto id = txn->Insert(std::make_shared<Account>(owner, balance));
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(txn->Commit().ok());
    return *id;
  }

  void MustPut(ObjectId id, const std::string& owner, int64_t balance) {
    auto txn = objects_->Begin();
    ASSERT_TRUE(txn->Put(id, std::make_shared<Account>(owner, balance)).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions options_;
  ObjectStoreOptions object_options_;
  TypeRegistry registry_;
  std::unique_ptr<ChunkStore> chunks_;
  PartitionId partition_ = 0;
  std::unique_ptr<ObjectStore> objects_;
};

TEST_F(SnapshotReadTest, ReaderSeesStateAsOfItsBegin) {
  ObjectId id = MustInsert("alice", 100);

  auto ro = objects_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  EXPECT_TRUE((*ro)->read_only());
  EXPECT_EQ(AsAccount(*(*ro)->Get(id)).balance, 100);

  // A writer commits underneath the open reader.
  MustPut(id, "alice", 200);

  // The reader still sees its snapshot; a fresh reader sees the new state.
  EXPECT_EQ(AsAccount(*(*ro)->Get(id)).balance, 100);
  auto ro2 = objects_->BeginReadOnly();
  ASSERT_TRUE(ro2.ok());
  EXPECT_EQ(AsAccount(*(*ro2)->Get(id)).balance, 200);

  EXPECT_TRUE((*ro)->Commit().ok());
  EXPECT_TRUE((*ro2)->Commit().ok());
}

TEST_F(SnapshotReadTest, ReadOnlyPathTakesNoLocks) {
  std::vector<ObjectId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(MustInsert("acct", i));
  }

  auto& metrics = obs::MetricsRegistry::Instance();
  metrics.Enable();
  metrics.Reset();

  auto ro = objects_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  for (const ObjectId& id : ids) {
    ASSERT_TRUE((*ro)->Get(id).ok());
    ASSERT_TRUE((*ro)->Get(id).ok());  // repeat: sharded-cache hit
  }
  EXPECT_TRUE((*ro)->Commit().ok());

  EXPECT_EQ(metrics.GetCounter("lock.acquires"), 0u)
      << "read-only transactions must never touch the LockManager";
  EXPECT_EQ(metrics.GetCounter("lock.contended"), 0u);
  EXPECT_GT(metrics.GetCounter("cache.shard_hits"), 0u)
      << "repeat reads must hit the sharded caches";
  metrics.Disable();
}

TEST_F(SnapshotReadTest, ReadOnlyTransactionRejectsWrites) {
  ObjectId id = MustInsert("ro", 1);
  auto ro = objects_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  EXPECT_FALSE((*ro)->GetForUpdate(id).ok());
  EXPECT_FALSE((*ro)->Put(id, std::make_shared<Account>("x", 2)).ok());
  EXPECT_FALSE((*ro)->Insert(std::make_shared<Account>("x", 3)).ok());
  EXPECT_FALSE((*ro)->Delete(id).ok());
  // The transaction is still usable for reads and commits cleanly.
  EXPECT_EQ(AsAccount(*(*ro)->Get(id)).balance, 1);
  EXPECT_TRUE((*ro)->Commit().ok());
}

TEST_F(SnapshotReadTest, OpenReaderDoesNotBlockWriters) {
  ObjectId id = MustInsert("w", 10);

  auto ro = objects_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE((*ro)->Get(id).ok());

  // With the reader holding its snapshot open, an exclusive-mode writer
  // must get straight through (lock_timeout is 100 ms; a shared lock held
  // by the reader would time this out).
  auto writer = objects_->Begin();
  ASSERT_TRUE(writer->GetForUpdate(id).ok());
  ASSERT_TRUE(writer->Put(id, std::make_shared<Account>("w", 11)).ok());
  ASSERT_TRUE(writer->Commit().ok());

  EXPECT_EQ(AsAccount(*(*ro)->Get(id)).balance, 10);
  EXPECT_TRUE((*ro)->Commit().ok());
}

TEST_F(SnapshotReadTest, SnapshotSharedWhileCurrentAndDeallocatedWhenDrained) {
  ObjectId id = MustInsert("s", 1);

  // Two concurrent readers share one COW copy.
  auto ro1 = objects_->BeginReadOnly();
  auto ro2 = objects_->BeginReadOnly();
  ASSERT_TRUE(ro1.ok() && ro2.ok());
  PartitionId copy = (*ro1)->snapshot_partition();
  EXPECT_NE(copy, 0);
  EXPECT_EQ(copy, (*ro2)->snapshot_partition());
  EXPECT_EQ(objects_->snapshot_pins(), 2u);
  EXPECT_TRUE(chunks_->PartitionExists(copy));

  // A write commit retires the copy; the next reader gets a fresh one.
  MustPut(id, "s", 2);
  auto ro3 = objects_->BeginReadOnly();
  ASSERT_TRUE(ro3.ok());
  PartitionId copy2 = (*ro3)->snapshot_partition();
  EXPECT_NE(copy2, copy);

  // The retired copy survives until its last reader drains, then goes away.
  EXPECT_TRUE((*ro1)->Commit().ok());
  EXPECT_TRUE(chunks_->PartitionExists(copy));
  EXPECT_TRUE((*ro2)->Commit().ok());
  EXPECT_FALSE(chunks_->PartitionExists(copy))
      << "retired snapshot must be deallocated when the last reader drains";

  EXPECT_TRUE((*ro3)->Commit().ok());
  EXPECT_EQ(objects_->snapshot_pins(), 0u);
  // The current (non-retired) copy stays pinned-free but alive for reuse.
  EXPECT_TRUE(chunks_->PartitionExists(copy2));
  auto ro4 = objects_->BeginReadOnly();
  ASSERT_TRUE(ro4.ok());
  EXPECT_EQ((*ro4)->snapshot_partition(), copy2);
  EXPECT_TRUE((*ro4)->Commit().ok());
}

TEST_F(SnapshotReadTest, AbortReleasesThePin) {
  MustInsert("a", 1);
  auto ro = objects_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(objects_->snapshot_pins(), 1u);
  (*ro)->Abort();
  EXPECT_EQ(objects_->snapshot_pins(), 0u);
}

TEST_F(SnapshotReadTest, TamperOnSnapshotChunkIsDetected) {
  ObjectId id = MustInsert("victim", 7);

  auto ro = objects_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  PartitionId copy = (*ro)->snapshot_partition();

  // Corrupt the stored bytes of the snapshot's version of the chunk before
  // the reader has validated (and so cached) them.
  ObjectId snap_chunk(copy, id.position);
  auto loc = chunks_->DebugChunkLocation(snap_chunk);
  ASSERT_TRUE(loc.ok());
  store_.CorruptByte(loc->first.segment, loc->first.offset + loc->second / 2,
                     0xFF);

  auto read = (*ro)->Get(id);
  ASSERT_FALSE(read.ok()) << "tampered snapshot chunk read succeeded";
  (*ro)->Abort();
}

TEST_F(SnapshotReadTest, ValidatedCacheInvalidatedByOverwrite) {
  auto& metrics = obs::MetricsRegistry::Instance();
  metrics.Enable();
  metrics.Reset();

  auto cid = chunks_->AllocateChunk(partition_);
  ASSERT_TRUE(cid.ok());
  ASSERT_TRUE(chunks_->WriteChunk(*cid, Bytes{1, 2, 3}).ok());

  auto first = chunks_->Read(*cid);   // miss: fills the validated cache
  auto second = chunks_->Read(*cid);  // hit: served without the store mutex
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_GE(metrics.GetCounter("chunk.vcache_hits"), 1u);

  // An overwrite must invalidate the cached plaintext.
  ASSERT_TRUE(chunks_->WriteChunk(*cid, Bytes{9, 9, 9}).ok());
  auto third = chunks_->Read(*cid);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, (Bytes{9, 9, 9}));
  metrics.Disable();
}

// Concurrent readers, two writers, and a cleaner/checkpointer hammering the
// same store. Readers check snapshot consistency: the sum of the two
// transfer accounts is invariant within any single snapshot. Primarily a
// TSan workload (the sharded caches, the snapshot lifecycle, and the
// lock-free vcache hit path all cross threads here).
TEST_F(SnapshotReadTest, StressReadersWritersCleaner) {
  constexpr int64_t kTotal = 1000;
  ObjectId a = MustInsert("a", 600);
  ObjectId b = MustInsert("b", kTotal - 600);
  ObjectId c = MustInsert("c", 0);

  constexpr int kReaderTxns = 120;
  constexpr int kWriterTxns = 120;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  auto reader = [&] {
    for (int i = 0; i < kReaderTxns; ++i) {
      auto ro = objects_->BeginReadOnly();
      if (!ro.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto va = (*ro)->Get(a);
      auto vb = (*ro)->Get(b);
      if (!va.ok() || !vb.ok() ||
          AsAccount(*va).balance + AsAccount(*vb).balance != kTotal) {
        failures.fetch_add(1);
        return;
      }
      if (!(*ro)->Commit().ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  };

  // Transfers between a and b (locks taken in a fixed order, so the two
  // write streams cannot deadlock with each other).
  auto transferer = [&] {
    for (int i = 0; i < kWriterTxns; ++i) {
      auto txn = objects_->Begin();
      auto va = txn->GetForUpdate(a);
      auto vb = txn->GetForUpdate(b);
      if (!va.ok() || !vb.ok()) {
        txn->Abort();
        continue;  // lock timeout: retry budget comes from the loop
      }
      int64_t delta = (i % 7) - 3;
      if (!txn->Put(a, std::make_shared<Account>(
                           "a", AsAccount(*va).balance - delta))
               .ok() ||
          !txn->Put(b, std::make_shared<Account>(
                           "b", AsAccount(*vb).balance + delta))
               .ok() ||
          !txn->Commit().ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  };

  auto updater = [&] {
    for (int i = 0; i < kWriterTxns; ++i) {
      auto txn = objects_->Begin();
      if (!txn->Put(c, std::make_shared<Account>("c", i)).ok() ||
          !txn->Commit().ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  };

  auto cleaner = [&] {
    while (!done.load()) {
      (void)chunks_->Clean(1);
      (void)chunks_->Checkpoint();
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(cleaner);
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back(reader);
  }
  threads.emplace_back(transferer);
  threads.emplace_back(updater);
  for (size_t i = 1; i < threads.size(); ++i) {
    threads[i].join();
  }
  done.store(true);
  threads[0].join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(objects_->snapshot_pins(), 0u);

  // Final state is consistent through a fresh snapshot.
  auto ro = objects_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(AsAccount(*(*ro)->Get(a)).balance +
                AsAccount(*(*ro)->Get(b)).balance,
            kTotal);
  EXPECT_TRUE((*ro)->Commit().ok());
}

}  // namespace
}  // namespace tdb
