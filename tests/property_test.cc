// Randomized property tests: the chunk store against an in-memory reference
// model, the B+-tree against std::map, pickle-reader robustness on corrupted
// inputs, and backup chains against the folded final state.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/backup/backup_store.h"
#include "src/chunk/chunk_store.h"
#include "src/common/rng.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"
#include "src/xdb/xdb.h"

namespace tdb {
namespace {

CryptoParams Params(uint8_t fill) {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, fill)};
}

// --- chunk store vs reference model, with periodic checkpoint/clean/crash --

class ChunkStoreModelTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkStoreModelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_P(ChunkStoreModelTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 512});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  options.checkpoint_dirty_threshold = 64;  // force frequent checkpoints
  TrustedServices trusted{&secret, nullptr, &counter};
  auto cs = ChunkStore::Create(&mem, trusted, options);
  ASSERT_TRUE(cs.ok());

  auto pid = (*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, Params(1));
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }

  std::map<uint64_t, Bytes> model;  // rank -> expected contents
  std::map<uint64_t, ChunkId> live_ids;

  for (int step = 0; step < 400; ++step) {
    uint64_t dice = rng.NextBelow(100);
    if (dice < 45 || live_ids.empty()) {
      // Write (new or existing).
      ChunkId id;
      if (live_ids.empty() || rng.NextBool()) {
        auto allocated = (*cs)->AllocateChunk(*pid);
        ASSERT_TRUE(allocated.ok());
        id = *allocated;
      } else {
        auto it = live_ids.begin();
        std::advance(it, rng.NextBelow(live_ids.size()));
        id = it->second;
      }
      Bytes data = rng.NextBytes(1 + rng.NextBelow(600));
      ASSERT_TRUE((*cs)->WriteChunk(id, data).ok());
      model[id.position.rank] = data;
      live_ids[id.position.rank] = id;
    } else if (dice < 60) {
      // Deallocate.
      auto it = live_ids.begin();
      std::advance(it, rng.NextBelow(live_ids.size()));
      ASSERT_TRUE((*cs)->DeallocateChunk(it->second).ok());
      model.erase(it->first);
      live_ids.erase(it);
    } else if (dice < 75) {
      // Read-verify a random chunk.
      auto it = live_ids.begin();
      std::advance(it, rng.NextBelow(live_ids.size()));
      auto data = (*cs)->Read(it->second);
      ASSERT_TRUE(data.ok()) << it->second.ToString();
      ASSERT_EQ(*data, model[it->first]);
    } else if (dice < 85) {
      ASSERT_TRUE((*cs)->Checkpoint().ok());
    } else if (dice < 92) {
      ASSERT_TRUE((*cs)->Clean(2).ok());
    } else {
      // Crash + recover; every committed op must survive (flushed every
      // commit, delta_ut = 0).
      cs->reset();
      mem.Crash();
      cs = ChunkStore::Open(&mem, trusted, options);
      ASSERT_TRUE(cs.ok()) << "step " << step << ": " << cs.status();
    }
  }
  // Full final audit.
  for (const auto& [rank, expected] : model) {
    auto data = (*cs)->Read(live_ids[rank]);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, expected);
  }
  uint64_t positions = *(*cs)->PartitionNumPositions(*pid);
  for (uint64_t rank = 0; rank < positions; ++rank) {
    if (model.count(rank) == 0) {
      EXPECT_FALSE((*cs)->Read(ChunkId(*pid, 0, rank)).ok());
    }
  }
}

// --- B+-tree vs std::map ---

class BTreeModelTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest, ::testing::Values(11, 22, 33));

TEST_P(BTreeModelTest, RandomOpsMatchStdMap) {
  Rng rng(GetParam());
  MemPageFile data(4096);
  MemAppendFile log;
  auto db = Xdb::Create(&data, &log);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTree("t").ok());
  std::map<std::string, std::string> model;

  for (int step = 0; step < 3000; ++step) {
    uint64_t dice = rng.NextBelow(100);
    std::string key = "k" + std::to_string(rng.NextBelow(500));
    if (dice < 55) {
      std::string value =
          "v" + std::to_string(step) + std::string(rng.NextBelow(100), 'p');
      ASSERT_TRUE((*db)->Put("t", BytesFromString(key), BytesFromString(value))
                      .ok());
      model[key] = value;
    } else if (dice < 70) {
      Status deleted = (*db)->Delete("t", BytesFromString(key));
      EXPECT_EQ(deleted.ok(), model.erase(key) > 0);
    } else if (dice < 95) {
      auto got = (*db)->Get("t", BytesFromString(key));
      auto want = model.find(key);
      if (want == model.end()) {
        EXPECT_FALSE(got.ok());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(StringFromBytes(*got), want->second);
      }
    } else {
      ASSERT_TRUE((*db)->Commit().ok());
    }
  }
  ASSERT_TRUE((*db)->Commit().ok());
  // Ordered full scan equals the model.
  std::vector<std::pair<std::string, std::string>> scanned;
  ASSERT_TRUE((*db)->ScanAll("t", [&](ByteView key, ByteView value) {
    scanned.emplace_back(StringFromBytes(key), StringFromBytes(value));
    return true;
  }).ok());
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [key, value] : model) {
    EXPECT_EQ(scanned[i].first, key);
    EXPECT_EQ(scanned[i].second, value);
    ++i;
  }
}

// --- pickle robustness under random corruption ---

TEST(PickleFuzzTest, CorruptedLeadersNeverCrash) {
  Rng rng(77);
  PartitionLeader leader;
  leader.params = Params(1);
  leader.num_positions = 100;
  leader.free_ranks = {1, 2, 3};
  Bytes pickled = leader.PickleToBytes();
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes corrupted = pickled;
    int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int m = 0; m < mutations; ++m) {
      corrupted[rng.NextBelow(corrupted.size())] ^=
          static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
    // Must either parse (harmlessly) or fail cleanly — never crash or hang.
    (void)PartitionLeader::UnpickleFromBytes(corrupted);
  }
  for (int trial = 0; trial < 500; ++trial) {
    Bytes truncated(pickled.begin(),
                    pickled.begin() + rng.NextBelow(pickled.size()));
    (void)PartitionLeader::UnpickleFromBytes(truncated);
  }
}

TEST(PickleFuzzTest, RandomBytesNeverCrashRecordParsers) {
  Rng rng(78);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk = rng.NextBytes(rng.NextBelow(200));
    (void)DeallocateRecord::Unpickle(junk);
    (void)CommitRecord::Unpickle(junk);
    (void)NextSegmentRecord::Unpickle(junk);
    (void)CleanerRecord::Unpickle(junk);
    (void)MapChunk::Unpickle(junk);
    (void)SystemLeaderRecord::Unpickle(junk);
  }
}

// --- backup chains fold to the final state ---

class BackupChainTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, BackupChainTest, ::testing::Values(5, 6));

TEST_P(BackupChainTest, RandomChainRestoresFinalState) {
  Rng rng(GetParam());
  MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 512});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  TrustedServices trusted{&secret, nullptr, &counter};
  auto cs = ChunkStore::Create(&mem, trusted, options);
  ASSERT_TRUE(cs.ok());
  BackupStore backup(cs->get());
  auto pid = (*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, Params(2));
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }

  std::map<uint64_t, Bytes> model;
  std::map<uint64_t, ChunkId> ids;
  MemArchive archive;
  std::vector<std::string> chain;
  PartitionId base_snapshot = 0;

  auto mutate = [&](int ops) {
    for (int i = 0; i < ops; ++i) {
      if (model.empty() || rng.NextBelow(10) < 7) {
        ChunkId id = ids.count(rng.NextBelow(30)) > 0 &&
                             rng.NextBool() && !ids.empty()
                         ? ids.begin()->second
                         : *(*cs)->AllocateChunk(*pid);
        Bytes data = rng.NextBytes(1 + rng.NextBelow(300));
        ASSERT_TRUE((*cs)->WriteChunk(id, data).ok());
        model[id.position.rank] = data;
        ids[id.position.rank] = id;
      } else {
        auto it = ids.begin();
        std::advance(it, rng.NextBelow(ids.size()));
        ASSERT_TRUE((*cs)->DeallocateChunk(it->second).ok());
        model.erase(it->first);
        ids.erase(it);
      }
    }
  };

  // Full backup then three incrementals with random mutation between.
  mutate(20);
  for (int round = 0; round < 4; ++round) {
    std::string name = "backup" + std::to_string(round);
    auto sink = archive.OpenSink(name);
    auto result = backup.CreateBackupSet(
        {{*pid, round == 0 ? static_cast<PartitionId>(0) : base_snapshot}},
        100 + round, round, sink.get());
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(sink->Close().ok());
    base_snapshot = result->snapshots[0];
    chain.push_back(name);
    mutate(10);
  }

  // Restore the chain (excluding post-final mutations) on a fresh machine.
  MemUntrustedStore mem2({.segment_size = 32 * 1024, .num_segments = 512});
  MemMonotonicCounter counter2;
  auto cs2 = ChunkStore::Create(
      &mem2, TrustedServices{&secret, nullptr, &counter2}, options);
  ASSERT_TRUE(cs2.ok());
  BackupStore backup2(cs2->get());
  auto sink = archive.OpenSink("chain");
  for (const std::string& name : chain) {
    auto src = archive.OpenSource(name);
    ASSERT_TRUE(sink->Write(*(*src)->Read(1 << 24)).ok());
  }
  ASSERT_TRUE(sink->Close().ok());
  auto src = archive.OpenSource("chain");
  auto restored = backup2.RestoreStream(src->get());
  ASSERT_TRUE(restored.ok()) << restored.status();

  // The restored state equals the state at the LAST backup's snapshot, which
  // is the model just before the final mutate(10). Rebuild that by replaying
  // the same seed... instead, simply verify against the live store's last
  // snapshot partition.
  uint64_t positions = *(*cs)->PartitionNumPositions(base_snapshot);
  for (uint64_t rank = 0; rank < positions; ++rank) {
    auto expected = (*cs)->Read(ChunkId(base_snapshot, 0, rank));
    auto actual = (*cs2)->Read(ChunkId(*pid, 0, rank));
    ASSERT_EQ(expected.ok(), actual.ok()) << "rank " << rank;
    if (expected.ok()) {
      EXPECT_EQ(*expected, *actual);
    }
  }
}

}  // namespace
}  // namespace tdb
