// Coverage for the parallel crypto pipeline (ChunkStoreOptions::
// crypto_threads): the untrusted-store and archive images must be
// byte-identical at any thread count (the fan-out reserves IV sequence
// numbers serially in batch order), stores written either way must reopen
// cleanly under both validation modes, and failures inside the fanned-out
// cleaner (I/O faults, tampered chunks) must surface as one clean Status.

#include <gtest/gtest.h>

#include "src/backup/backup_store.h"
#include "src/chunk/chunk_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/archival_store.h"
#include "src/store/faulty_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

CryptoParams DesSha1Params() {
  return CryptoParams{CipherAlg::kDes, HashAlg::kSha1, Bytes(8, 0x5C)};
}

CryptoParams AesSha256Params() {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 0x33)};
}

Bytes PatternChunk(size_t tag, size_t size) {
  Bytes b(size);
  for (size_t j = 0; j < size; ++j) {
    b[j] = static_cast<uint8_t>(tag * 31 + j * 7);
  }
  return b;
}

Bytes DrainArchiveStream(MemArchive& archive, const std::string& name) {
  auto source = archive.OpenSource(name);
  EXPECT_TRUE(source.ok());
  Bytes all;
  while (true) {
    auto piece = (*source)->Read(64 * 1024);
    EXPECT_TRUE(piece.ok());
    if (piece->empty()) {
      break;
    }
    Append(all, *piece);
  }
  return all;
}

struct StoreImage {
  Bytes superblock;
  std::vector<Bytes> segments;
  Bytes archive;
};

// Runs a commit + checkpoint + clean + backup workload at the given thread
// count, verifies the store reopens cleanly afterwards, and returns the
// resulting durable images.
StoreImage RunWorkload(ValidationMode mode, size_t crypto_threads) {
  MemUntrustedStore store({.segment_size = 8192, .num_segments = 256});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  TrustedServices trusted{&secret, &reg, &counter};
  ChunkStoreOptions options;
  options.validation.mode = mode;
  options.crypto_threads = crypto_threads;

  auto created = ChunkStore::Create(&store, trusted, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<ChunkStore> chunks = std::move(*created);

  auto p1 = chunks->AllocatePartition();
  auto p2 = chunks->AllocatePartition();
  EXPECT_TRUE(p1.ok() && p2.ok());
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*p1, DesSha1Params());
    batch.WritePartition(*p2, AesSha256Params());
    EXPECT_TRUE(chunks->Commit(std::move(batch)).ok());
  }

  // One large multi-chunk commit per partition (CommitLocked fan-out).
  std::vector<ChunkId> ids1, ids2;
  {
    ChunkStore::Batch batch;
    for (size_t i = 0; i < 24; ++i) {
      auto id = chunks->AllocateChunk(*p1);
      EXPECT_TRUE(id.ok());
      ids1.push_back(*id);
      batch.WriteChunk(*id, PatternChunk(i, 1024 + 64 * i));
    }
    for (size_t i = 0; i < 16; ++i) {
      auto id = chunks->AllocateChunk(*p2);
      EXPECT_TRUE(id.ok());
      ids2.push_back(*id);
      batch.WriteChunk(*id, PatternChunk(100 + i, 512 + 128 * i));
    }
    EXPECT_TRUE(chunks->Commit(std::move(batch)).ok());
  }
  EXPECT_TRUE(chunks->Checkpoint().ok());  // MaterializeTree fan-out

  // Obsolete most of the first segments so the cleaner has work.
  {
    ChunkStore::Batch batch;
    for (size_t i = 0; i < 20; ++i) {
      batch.WriteChunk(ids1[i], PatternChunk(200 + i, 2048));
    }
    for (size_t i = 0; i < 12; ++i) {
      batch.WriteChunk(ids2[i], PatternChunk(300 + i, 1536));
    }
    EXPECT_TRUE(chunks->Commit(std::move(batch)).ok());
  }
  {
    ChunkStore::Batch batch;
    batch.DeallocateChunk(ids2[13]);
    batch.DeallocateChunk(ids2[14]);
    EXPECT_TRUE(chunks->Commit(std::move(batch)).ok());
  }
  EXPECT_TRUE(chunks->Checkpoint().ok());
  auto cleaned = chunks->Clean(6);  // cleaner revalidation fan-out
  EXPECT_TRUE(cleaned.ok()) << cleaned.status().ToString();
  EXPECT_GT(*cleaned, 0u);

  // Backup both partitions in one set (backup writer fan-out).
  MemArchive archive;
  BackupStore backup(chunks.get());
  auto sink = archive.OpenSink("set");
  auto backed = backup.CreateBackupSet({{*p1, 0}, {*p2, 0}}, /*set_id=*/7,
                                       /*created_unix=*/1234, sink.get());
  EXPECT_TRUE(backed.ok()) << backed.status().ToString();
  EXPECT_TRUE(sink->Close().ok());

  // The store must reopen cleanly and serve back the expected data.
  chunks.reset();
  auto reopened = ChunkStore::Open(&store, trusted, options);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
  if (reopened.ok()) {
    auto r = (*reopened)->Read(ids1[5]);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(*r, PatternChunk(205, 2048));
    }
    auto kept = (*reopened)->Read(ids1[23]);
    EXPECT_TRUE(kept.ok());
    if (kept.ok()) {
      EXPECT_EQ(*kept, PatternChunk(23, 1024 + 64 * 23));
    }
    EXPECT_FALSE((*reopened)->ChunkWritten(ids2[13]));
  }

  StoreImage image;
  image.superblock = store.DumpSuperblock();
  image.segments.reserve(store.num_segments());
  for (uint32_t s = 0; s < store.num_segments(); ++s) {
    image.segments.push_back(store.DumpSegment(s));
  }
  image.archive = DrainArchiveStream(archive, "set");
  return image;
}

void ExpectIdenticalImages(const StoreImage& serial,
                           const StoreImage& parallel) {
  EXPECT_EQ(serial.superblock, parallel.superblock);
  ASSERT_EQ(serial.segments.size(), parallel.segments.size());
  size_t mismatched = 0;
  for (size_t s = 0; s < serial.segments.size(); ++s) {
    if (serial.segments[s] != parallel.segments[s]) {
      ++mismatched;
      ADD_FAILURE() << "segment " << s << " differs between serial and "
                    << "parallel runs";
    }
  }
  EXPECT_EQ(mismatched, 0u);
  EXPECT_EQ(serial.archive.size(), parallel.archive.size());
  EXPECT_TRUE(serial.archive == parallel.archive)
      << "archive bytes differ between serial and parallel runs";
}

TEST(ParallelCryptoDeterminism, CounterModeImagesAreByteIdentical) {
  StoreImage serial = RunWorkload(ValidationMode::kCounter, 0);
  StoreImage parallel = RunWorkload(ValidationMode::kCounter, 8);
  ExpectIdenticalImages(serial, parallel);
}

TEST(ParallelCryptoDeterminism, DirectHashModeImagesAreByteIdentical) {
  StoreImage serial = RunWorkload(ValidationMode::kDirectHash, 0);
  StoreImage parallel = RunWorkload(ValidationMode::kDirectHash, 8);
  ExpectIdenticalImages(serial, parallel);
}

// A backup written with the parallel pipeline must restore onto a store
// running serially (and vice versa): the Hp(chunk)-based signature is a
// property of the stream, not of the writer's thread count.
TEST(ParallelCryptoBackup, ParallelBackupRestoresOntoSerialStore) {
  MemUntrustedStore store({.segment_size = 8192, .num_segments = 256});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  TrustedServices trusted{&secret, nullptr, &counter};
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  options.crypto_threads = 8;
  auto cs = ChunkStore::Create(&store, trusted, options);
  ASSERT_TRUE(cs.ok());
  auto p = (*cs)->AllocatePartition();
  ASSERT_TRUE(p.ok());
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*p, DesSha1Params());
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  std::vector<ChunkId> ids;
  {
    ChunkStore::Batch batch;
    for (size_t i = 0; i < 20; ++i) {
      auto id = (*cs)->AllocateChunk(*p);
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
      batch.WriteChunk(*id, PatternChunk(i, 700 + 33 * i));
    }
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  MemArchive archive;
  BackupStore backup(cs->get());
  auto sink = archive.OpenSink("b");
  ASSERT_TRUE(
      backup.CreateBackupSet({{*p, 0}}, 1, 99, sink.get()).ok());
  ASSERT_TRUE(sink->Close().ok());

  // Fresh, strictly serial store.
  MemUntrustedStore store2({.segment_size = 8192, .num_segments = 256});
  MemSecretStore secret2(Bytes(32, 0xA5));
  MemMonotonicCounter counter2;
  TrustedServices trusted2{&secret2, nullptr, &counter2};
  ChunkStoreOptions options2;
  options2.validation.mode = ValidationMode::kCounter;
  options2.crypto_threads = 0;
  auto cs2 = ChunkStore::Create(&store2, trusted2, options2);
  ASSERT_TRUE(cs2.ok());
  BackupStore restore(cs2->get());
  auto source = archive.OpenSource("b");
  ASSERT_TRUE(source.ok());
  auto result = restore.RestoreStream(source->get(), nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (size_t i = 0; i < ids.size(); ++i) {
    auto r = (*cs2)->Read(ChunkId(*p, ids[i].position));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, PatternChunk(i, 700 + 33 * i));
  }
}

class ParallelCleanerFailureTest : public ::testing::Test {
 protected:
  ParallelCleanerFailureTest()
      : base_({.segment_size = 8192, .num_segments = 256}),
        store_(&base_),
        secret_(Bytes(32, 0xA5)) {
    options_.validation.mode = ValidationMode::kCounter;
    options_.crypto_threads = 8;
    auto cs = ChunkStore::Create(&store_, {&secret_, nullptr, &counter_},
                                 options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
  }

  // Fills a partition, then obsoletes most of it so Clean has candidate
  // segments with a few surviving versions. Returns the surviving chunk.
  ChunkId PrepareCleanableState() {
    auto p = chunks_->AllocatePartition();
    EXPECT_TRUE(p.ok());
    ChunkStore::Batch pb;
    pb.WritePartition(*p, AesSha256Params());
    EXPECT_TRUE(chunks_->Commit(std::move(pb)).ok());
    std::vector<ChunkId> ids;
    ChunkStore::Batch wb;
    for (size_t i = 0; i < 30; ++i) {
      auto id = chunks_->AllocateChunk(*p);
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
      wb.WriteChunk(*id, PatternChunk(i, 1500));
    }
    EXPECT_TRUE(chunks_->Commit(std::move(wb)).ok());
    EXPECT_TRUE(chunks_->Checkpoint().ok());
    ChunkStore::Batch ob;
    for (size_t i = 1; i < 30; ++i) {
      ob.WriteChunk(ids[i], PatternChunk(500 + i, 1500));
    }
    EXPECT_TRUE(chunks_->Commit(std::move(ob)).ok());
    EXPECT_TRUE(chunks_->Checkpoint().ok());
    return ids[0];
  }

  MemUntrustedStore base_;
  FaultyStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions options_;
  std::unique_ptr<ChunkStore> chunks_;
};

TEST_F(ParallelCleanerFailureTest, ReadFaultSurfacesOneCleanStatus) {
  PrepareCleanableState();
  store_.FailAfterReads(1);
  auto cleaned = chunks_->Clean(6);
  ASSERT_FALSE(cleaned.ok());
  EXPECT_EQ(cleaned.status().code(), StatusCode::kIoError)
      << cleaned.status().ToString();
  // The fault fired before any log mutation: clearing it must leave the
  // store fully usable, and the pool drained (a wedged pool would hang the
  // next Clean).
  store_.ClearFault();
  auto retry = chunks_->Clean(6);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(ParallelCleanerFailureTest, TamperDetectedDuringParallelRevalidation) {
  ChunkId survivor = PrepareCleanableState();
  auto loc = chunks_->DebugChunkLocation(survivor);
  ASSERT_TRUE(loc.ok());
  // Flip a bit in the surviving version's body ciphertext; the cleaner's
  // fanned-out revalidation must refuse to launder it. Clean everything so
  // the survivor's segment is certainly among the cleaned set.
  base_.CorruptByte(loc->first.segment, loc->first.offset + loc->second - 1,
                    0x80);
  auto cleaned = chunks_->Clean(1000);
  ASSERT_FALSE(cleaned.ok());
  EXPECT_EQ(cleaned.status().code(), StatusCode::kTamperDetected)
      << cleaned.status().ToString();
}

}  // namespace
}  // namespace tdb
