// Durability regressions for the trusted platform's file helpers.
//
// ReadWholeFile: a failed ftell (unseekable path, e.g. a FIFO) used to be
// cast to size_t, attempting a ~SIZE_MAX allocation. It must return kIoError.
//
// WriteWholeFileDurable: the old WriteWholeFile only fflush()ed, so register
// slots could sit in the OS page cache — a power loss could lose BOTH slots
// and void the register's crash-atomicity contract. The durable version
// fsyncs the data, checks fclose, and fsyncs the containing directory; a
// path whose data cannot be fsynced (a FIFO) must be reported as an error,
// where the old code happily returned success.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "src/platform/file_util.h"
#include "src/platform/trusted_store.h"

namespace tdb {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = ::testing::TempDir() + "/tdb_durability_" + tag + "_" +
            std::to_string(::getpid());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Keeps a FIFO openable without blocking: O_RDWR on a FIFO never blocks and
// counts as both reader and writer for later opens.
class FifoKeeper {
 public:
  explicit FifoKeeper(const std::string& path) {
    EXPECT_EQ(::mkfifo(path.c_str(), 0600), 0);
    fd_ = ::open(path.c_str(), O_RDWR);
    EXPECT_GE(fd_, 0);
  }
  ~FifoKeeper() {
    if (fd_ >= 0) ::close(fd_);
  }

 private:
  int fd_ = -1;
};

TEST(ReadWholeFileTest, UnseekablePathReturnsIoError) {
  TempDir dir("fifo_read");
  std::string fifo = dir.path() + "/fifo";
  FifoKeeper keeper(fifo);
  // Pre-fix: fseek/ftell fail, ftell's -1 became a ~SIZE_MAX allocation and
  // the process died. Post-fix: a clean kIoError.
  auto result = ReadWholeFile(fifo);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError)
      << result.status();
}

TEST(ReadWholeFileTest, MissingFileReturnsNotFound) {
  TempDir dir("missing");
  auto result = ReadWholeFile(dir.path() + "/nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ReadWholeFileTest, RoundTripsContents) {
  TempDir dir("roundtrip");
  std::string path = dir.path() + "/f";
  Bytes data = BytesFromString("hello durable world");
  ASSERT_TRUE(WriteWholeFileDurable(path, data).ok());
  auto back = ReadWholeFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, data);
  // Overwrite with shorter contents: no stale tail.
  Bytes shorter = BytesFromString("hi");
  ASSERT_TRUE(WriteWholeFileDurable(path, shorter).ok());
  back = ReadWholeFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, shorter);
  // Empty contents round-trip too.
  ASSERT_TRUE(WriteWholeFileDurable(path, Bytes{}).ok());
  back = ReadWholeFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(WriteWholeFileDurableTest, UnsyncablePathReturnsError) {
  TempDir dir("fifo_write");
  std::string fifo = dir.path() + "/fifo";
  FifoKeeper keeper(fifo);
  // The bytes fit in the pipe buffer, so fwrite+fflush succeed — the old
  // fflush-only WriteWholeFile returned OK for a write that never reached
  // stable storage. fsync on a FIFO fails, so the durable version reports it.
  Status s = WriteWholeFileDurable(fifo, BytesFromString("not durable"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError) << s;
}

TEST(WriteWholeFileDurableTest, MissingDirectoryReturnsError) {
  TempDir dir("nodir");
  Status s = WriteWholeFileDurable(dir.path() + "/sub/dir/f",
                                   BytesFromString("x"));
  ASSERT_FALSE(s.ok());
}

TEST(FileRegisterTest, UnseekableSlotDoesNotCrashOpen) {
  // A register whose slot file is unseekable (device weirdness) must open —
  // falling back to "no valid slot" — instead of dying in ReadWholeFile.
  TempDir dir("fifo_slot");
  std::string base = dir.path() + "/reg";
  std::string slot0 = FileTamperResistantRegister::SlotPathForTesting(base, 0);
  FifoKeeper keeper(slot0);
  auto reg = FileTamperResistantRegister::Open(base);
  ASSERT_TRUE(reg.ok()) << reg.status();
  auto value = (*reg)->Read();
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(value->empty());
}

TEST(FileRegisterTest, SurvivesReopenAfterEveryWrite) {
  TempDir dir("reopen");
  std::string base = dir.path() + "/reg";
  for (int i = 1; i <= 5; ++i) {
    Bytes value(8, static_cast<uint8_t>(i));
    {
      auto reg = FileTamperResistantRegister::Open(base);
      ASSERT_TRUE(reg.ok());
      ASSERT_TRUE((*reg)->Write(value).ok());
    }
    auto reg = FileTamperResistantRegister::Open(base);
    ASSERT_TRUE(reg.ok());
    auto got = (*reg)->Read();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, value) << "write " << i;
  }
}

TEST(FileCounterTest, MonotonicAcrossReopen) {
  TempDir dir("counter");
  std::string base = dir.path() + "/ctr";
  {
    auto ctr = FileMonotonicCounter::Open(base);
    ASSERT_TRUE(ctr.ok());
    ASSERT_TRUE((*ctr)->AdvanceTo(7).ok());
    EXPECT_FALSE((*ctr)->AdvanceTo(3).ok());
  }
  auto ctr = FileMonotonicCounter::Open(base);
  ASSERT_TRUE(ctr.ok());
  auto got = (*ctr)->Read();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 7u);
  EXPECT_FALSE((*ctr)->AdvanceTo(6).ok());
  ASSERT_TRUE((*ctr)->AdvanceTo(8).ok());
}

}  // namespace
}  // namespace tdb
