// Tests for the XDB baseline: pager, WAL recovery, B+-tree behaviour across
// splits and scans, transactions, and the crypto layer's record protection.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/platform/trusted_store.h"
#include "src/xdb/crypto_layer.h"
#include "src/xdb/xdb.h"

namespace tdb {
namespace {

Bytes Key(const std::string& s) { return BytesFromString(s); }

class XdbTest : public ::testing::Test {
 protected:
  XdbTest() : data_(4096) {
    auto db = Xdb::Create(&data_, &log_);
    EXPECT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  MemPageFile data_;
  MemAppendFile log_;
  std::unique_ptr<Xdb> db_;
};

TEST_F(XdbTest, PutGetRoundTrip) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  ASSERT_TRUE(db_->Put("t", Key("hello"), Key("world")).ok());
  ASSERT_TRUE(db_->Commit().ok());
  EXPECT_EQ(*db_->Get("t", Key("hello")), Key("world"));
  EXPECT_EQ(db_->Get("t", Key("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(XdbTest, OverwriteReplacesValue) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  ASSERT_TRUE(db_->Put("t", Key("k"), Key("v1")).ok());
  ASSERT_TRUE(db_->Put("t", Key("k"), Key("v2 longer value")).ok());
  ASSERT_TRUE(db_->Commit().ok());
  EXPECT_EQ(*db_->Get("t", Key("k")), Key("v2 longer value"));
}

TEST_F(XdbTest, ManyKeysForceSplitsAndStaySorted) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  Rng rng(11);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "key" + std::to_string(rng.NextBelow(100000));
    std::string value = "value" + std::to_string(i) +
                        std::string(rng.NextBelow(200), 'x');
    expected[key] = value;
    ASSERT_TRUE(db_->Put("t", Key(key), Key(value)).ok());
  }
  ASSERT_TRUE(db_->Commit().ok());
  // Every key retrievable.
  for (const auto& [key, value] : expected) {
    auto got = db_->Get("t", Key(key));
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, Key(value));
  }
  // Full scan yields keys in sorted order with no extras.
  std::vector<std::string> scanned;
  ASSERT_TRUE(db_->ScanAll("t", [&](ByteView key, ByteView) {
    scanned.push_back(StringFromBytes(key));
    return true;
  }).ok());
  ASSERT_EQ(scanned.size(), expected.size());
  size_t i = 0;
  for (const auto& [key, _] : expected) {
    EXPECT_EQ(scanned[i++], key);
  }
}

TEST_F(XdbTest, RangeScanRespectsBounds) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    ASSERT_TRUE(db_->Put("t", Key(buf), Key(std::to_string(i))).ok());
  }
  ASSERT_TRUE(db_->Commit().ok());
  std::vector<std::string> hits;
  ASSERT_TRUE(db_->Scan("t", Key("k010"), Key("k015"),
                        [&](ByteView key, ByteView) {
                          hits.push_back(StringFromBytes(key));
                          return true;
                        })
                  .ok());
  EXPECT_EQ(hits, (std::vector<std::string>{"k010", "k011", "k012", "k013",
                                            "k014", "k015"}));
}

TEST_F(XdbTest, DeleteRemovesKey) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  ASSERT_TRUE(db_->Put("t", Key("a"), Key("1")).ok());
  ASSERT_TRUE(db_->Put("t", Key("b"), Key("2")).ok());
  ASSERT_TRUE(db_->Delete("t", Key("a")).ok());
  ASSERT_TRUE(db_->Commit().ok());
  EXPECT_EQ(db_->Get("t", Key("a")).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*db_->Get("t", Key("b")), Key("2"));
  EXPECT_EQ(db_->Delete("t", Key("a")).code(), StatusCode::kNotFound);
}

TEST_F(XdbTest, MultipleTreesAreIndependent) {
  ASSERT_TRUE(db_->CreateTree("t1").ok());
  ASSERT_TRUE(db_->CreateTree("t2").ok());
  ASSERT_TRUE(db_->Put("t1", Key("k"), Key("in t1")).ok());
  ASSERT_TRUE(db_->Put("t2", Key("k"), Key("in t2")).ok());
  ASSERT_TRUE(db_->Commit().ok());
  EXPECT_EQ(*db_->Get("t1", Key("k")), Key("in t1"));
  EXPECT_EQ(*db_->Get("t2", Key("k")), Key("in t2"));
  EXPECT_EQ(db_->CreateTree("t1").code(), StatusCode::kAlreadyExists);
}

TEST_F(XdbTest, AbortDiscardsBufferedWrites) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  ASSERT_TRUE(db_->Put("t", Key("persisted"), Key("yes")).ok());
  ASSERT_TRUE(db_->Commit().ok());
  ASSERT_TRUE(db_->Put("t", Key("doomed"), Key("no")).ok());
  db_->Abort();
  EXPECT_EQ(*db_->Get("t", Key("persisted")), Key("yes"));
  EXPECT_EQ(db_->Get("t", Key("doomed")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(XdbTest, SurvivesReopen) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db_->Put("t", Key("k" + std::to_string(i)),
                         Key("v" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(db_->Commit().ok());
  db_.reset();
  auto reopened = Xdb::Open(&data_, &log_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("t", Key("k42")), Key("v42"));
  EXPECT_TRUE((*reopened)->HasTree("t"));
}

TEST_F(XdbTest, WalRecoversCrashAfterLogFlush) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  ASSERT_TRUE(db_->Put("t", Key("before"), Key("crash")).ok());
  ASSERT_TRUE(db_->Commit().ok());
  // The next commit reaches the log but never the data pages.
  ASSERT_TRUE(db_->Put("t", Key("after"), Key("log-only")).ok());
  db_->set_simulate_crash_after_log(true);
  ASSERT_TRUE(db_->Commit().ok());
  db_.reset();
  auto reopened = Xdb::Open(&data_, &log_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("t", Key("before")), Key("crash"));
  EXPECT_EQ(*(*reopened)->Get("t", Key("after")), Key("log-only"));
}

TEST_F(XdbTest, CommitFlushesLogAndData) {
  ASSERT_TRUE(db_->CreateTree("t").ok());
  uint64_t data_flushes_before = data_.flush_count();
  uint64_t log_flushes_before = log_.flush_count();
  ASSERT_TRUE(db_->Put("t", Key("k"), Key("v")).ok());
  ASSERT_TRUE(db_->Commit().ok());
  // The conventional commit path: at least one log flush AND one data flush
  // (TDB by contrast flushes only its log-structured store once).
  EXPECT_GT(log_.flush_count(), log_flushes_before);
  EXPECT_GT(data_.flush_count(), data_flushes_before);
}

TEST(SecureXdbTest, EncryptsAndValidatesRecords) {
  MemPageFile data(4096);
  MemAppendFile log;
  MemMonotonicCounter counter;
  auto db = Xdb::Create(&data, &log);
  ASSERT_TRUE(db.ok());
  auto suite = CryptoSuite::Create(
      CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 9)});
  ASSERT_TRUE(suite.ok());
  SecureXdb secure(db->get(), *suite, &counter);
  ASSERT_TRUE(secure.CreateTree("t").ok());
  ASSERT_TRUE(secure.Put("t", Key("k"), Key("secret value")).ok());
  ASSERT_TRUE(secure.Commit().ok());
  EXPECT_EQ(*secure.Get("t", Key("k")), Key("secret value"));

  // The raw record must not contain the plaintext.
  Bytes raw = *(*db)->Get("t", Key("k"));
  std::string raw_str = StringFromBytes(raw);
  EXPECT_EQ(raw_str.find("secret value"), std::string::npos);

  // Swapping a record between keys is detected (MAC binds the key) ...
  ASSERT_TRUE(secure.Put("t", Key("k2"), Key("other")).ok());
  ASSERT_TRUE(secure.Commit().ok());
  Bytes other_raw = *(*db)->Get("t", Key("k2"));
  ASSERT_TRUE((*db)->Put("t", Key("k"), other_raw).ok());
  ASSERT_TRUE((*db)->Commit().ok());
  EXPECT_EQ(secure.Get("t", Key("k")).status().code(),
            StatusCode::kTamperDetected);
}

TEST(SecureXdbTest, MetadataIsUnprotected) {
  // The architectural weakness the paper calls out (§1.2): deleting a record
  // through the raw XDB interface is NOT detected by the crypto layer.
  MemPageFile data(4096);
  MemAppendFile log;
  MemMonotonicCounter counter;
  auto db = Xdb::Create(&data, &log);
  auto suite = CryptoSuite::Create(
      CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 9)});
  SecureXdb secure(db->get(), *suite, &counter);
  ASSERT_TRUE(secure.CreateTree("t").ok());
  ASSERT_TRUE(secure.Put("t", Key("k"), Key("v")).ok());
  ASSERT_TRUE(secure.Commit().ok());
  // Attack at the storage level.
  ASSERT_TRUE((*db)->Delete("t", Key("k")).ok());
  ASSERT_TRUE((*db)->Commit().ok());
  // The layered system reports "not found" — silent data deletion, where TDB
  // would signal tamper detection.
  EXPECT_EQ(secure.Get("t", Key("k")).status().code(), StatusCode::kNotFound);
}

TEST(BTreeDirectTest, LargeValuesRejected) {
  MemPageFile data(4096);
  MemAppendFile log;
  auto db = Xdb::Create(&data, &log);
  ASSERT_TRUE((*db)->CreateTree("t").ok());
  Bytes huge(5000, 'x');
  EXPECT_EQ((*db)->Put("t", Key("k"), huge).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tdb
