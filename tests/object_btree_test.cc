// Tests for the object-backed B-tree index and its integration with the
// collection store's scalable indexes.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/collect/collection_store.h"
#include "src/collect/object_btree.h"
#include "src/common/rng.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

class ObjectBTreeTest : public ::testing::Test {
 protected:
  ObjectBTreeTest()
      : store_({.segment_size = 64 * 1024, .num_segments = 1024}),
        secret_(Bytes(32, 0xA5)) {
    options_.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
    // Registers collection, index, directory, AND b-tree node types.
    EXPECT_TRUE(CollectionStore::RegisterTypes(registry_).ok());
    auto pid = chunks_->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 6)});
    EXPECT_TRUE(chunks_->Commit(std::move(batch)).ok());
    objects_ = std::make_unique<ObjectStore>(chunks_.get(), *pid, &registry_);
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions options_;
  TypeRegistry registry_;
  std::unique_ptr<ChunkStore> chunks_;
  std::unique_ptr<ObjectStore> objects_;
};

TEST_F(ObjectBTreeTest, InsertAndExact) {
  auto txn = objects_->Begin();
  ObjectId root = *ObjectBTree::Create(*txn);
  ObjectBTree tree(txn.get(), root);
  ASSERT_TRUE(tree.Insert(EncodeU64Key(5), 500).ok());
  ASSERT_TRUE(tree.Insert(EncodeU64Key(5), 501).ok());  // duplicate key
  ASSERT_TRUE(tree.Insert(EncodeU64Key(7), 700).ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto txn2 = objects_->Begin();
  ObjectBTree tree2(txn2.get(), root);
  EXPECT_EQ(*tree2.Exact(EncodeU64Key(5)), (std::vector<uint64_t>{500, 501}));
  EXPECT_EQ(*tree2.Exact(EncodeU64Key(7)), std::vector<uint64_t>{700});
  EXPECT_TRUE(tree2.Exact(EncodeU64Key(6))->empty());
}

TEST_F(ObjectBTreeTest, DuplicatePairIsIdempotent) {
  auto txn = objects_->Begin();
  ObjectId root = *ObjectBTree::Create(*txn);
  ObjectBTree tree(txn.get(), root);
  ASSERT_TRUE(tree.Insert(EncodeU64Key(1), 10).ok());
  ASSERT_TRUE(tree.Insert(EncodeU64Key(1), 10).ok());
  EXPECT_EQ(*tree.Count(), 1u);
}

TEST_F(ObjectBTreeTest, SplitsKeepRootIdStable) {
  auto txn = objects_->Begin();
  ObjectId root = *ObjectBTree::Create(*txn);
  ObjectBTree tree(txn.get(), root);
  // Far more entries than one node holds: multiple levels of splits.
  const int kEntries = 2000;
  for (int i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(tree.Insert(EncodeU64Key(i * 7 % kEntries), i).ok());
  }
  ASSERT_TRUE(txn->Commit().ok());

  auto txn2 = objects_->Begin();
  ObjectBTree tree2(txn2.get(), root);  // the same root id still works
  EXPECT_EQ(*tree2.Count(), static_cast<uint64_t>(kEntries));
  auto all = tree2.Range(EncodeU64Key(0), EncodeU64Key(kEntries));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), static_cast<size_t>(kEntries));
}

TEST_F(ObjectBTreeTest, RandomOpsMatchReferenceMultimap) {
  Rng rng(99);
  auto txn = objects_->Begin();
  ObjectId root = *ObjectBTree::Create(*txn);
  ObjectBTree tree(txn.get(), root);
  std::set<std::pair<uint64_t, uint64_t>> model;  // (key, value)
  for (int step = 0; step < 2500; ++step) {
    uint64_t key = rng.NextBelow(200);
    uint64_t value = rng.NextBelow(50);
    if (rng.NextBelow(10) < 6) {
      ASSERT_TRUE(tree.Insert(EncodeU64Key(key), value).ok());
      model.insert({key, value});
    } else {
      Status removed = tree.Remove(EncodeU64Key(key), value);
      EXPECT_EQ(removed.ok(), model.erase({key, value}) > 0);
    }
  }
  // Verify every key's posting list.
  for (uint64_t key = 0; key < 200; ++key) {
    std::vector<uint64_t> expected;
    for (auto it = model.lower_bound({key, 0});
         it != model.end() && it->first == key; ++it) {
      expected.push_back(it->second);
    }
    EXPECT_EQ(*tree.Exact(EncodeU64Key(key)), expected) << "key " << key;
  }
  // Range check.
  std::vector<uint64_t> expected_range;
  for (const auto& [key, value] : model) {
    if (key >= 50 && key <= 150) {
      expected_range.push_back(value);
    }
  }
  EXPECT_EQ(*tree.Range(EncodeU64Key(50), EncodeU64Key(150)), expected_range);
}

TEST_F(ObjectBTreeTest, AbortRollsBackInserts) {
  ObjectId root;
  {
    auto txn = objects_->Begin();
    root = *ObjectBTree::Create(*txn);
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = objects_->Begin();
    ObjectBTree tree(txn.get(), root);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(tree.Insert(EncodeU64Key(i), i).ok());
    }
    txn->Abort();
  }
  auto txn = objects_->Begin();
  ObjectBTree tree(txn.get(), root);
  EXPECT_EQ(*tree.Count(), 0u);
}

// --- integration with the collection store ---

class Item final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 600;
  Item() = default;
  explicit Item(uint64_t score) : score(score) {}
  uint64_t score = 0;
  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override { w.WriteVarint(score); }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto item = std::make_shared<Item>();
    item->score = r.ReadVarint();
    return ObjectPtr(item);
  }
};

TEST_F(ObjectBTreeTest, ScalableCollectionIndexEndToEnd) {
  ASSERT_TRUE(RegisterType<Item>(registry_).ok());
  KeyFunctionRegistry key_fns;
  ASSERT_TRUE(key_fns
                  .Register("item.score",
                            [](const Pickled& object) -> Result<Bytes> {
                              return EncodeU64Key(
                                  dynamic_cast<const Item&>(object).score);
                            })
                  .ok());
  ObjectId directory;
  {
    auto txn = objects_->Begin();
    directory = *CollectionStore::Format(*txn);
    ASSERT_TRUE(txn->Commit().ok());
  }
  CollectionStore collections(objects_.get(), &key_fns, directory);

  ObjectId coll;
  {
    auto txn = objects_->Begin();
    coll = *collections.CreateCollection(
        *txn, "items", {{"by_score", "item.score", true, /*scalable=*/true}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Enough members to force the index B-tree to split several times.
  std::map<uint64_t, ObjectId> by_score;
  {
    auto txn = objects_->Begin();
    for (uint64_t score = 0; score < 500; ++score) {
      by_score[score] =
          *collections.Insert(*txn, coll, std::make_shared<Item>(score));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = objects_->Begin();
    auto hits = collections.LookupRange(*txn, coll, "by_score",
                                        EncodeU64Key(100), EncodeU64Key(109));
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(hits->size(), 10u);
    auto exact = collections.LookupExact(*txn, coll, "by_score",
                                         EncodeU64Key(250));
    ASSERT_TRUE(exact.ok());
    ASSERT_EQ(exact->size(), 1u);
    EXPECT_EQ((*exact)[0], by_score[250]);
  }
  // Update moves entries; remove drops them — through the B-tree.
  {
    auto txn = objects_->Begin();
    ASSERT_TRUE(collections
                    .Update(*txn, coll, by_score[250],
                            std::make_shared<Item>(9999))
                    .ok());
    ASSERT_TRUE(collections.Remove(*txn, coll, by_score[251]).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = objects_->Begin();
  EXPECT_TRUE(collections
                  .LookupExact(*txn, coll, "by_score", EncodeU64Key(250))
                  ->empty());
  EXPECT_TRUE(collections
                  .LookupExact(*txn, coll, "by_score", EncodeU64Key(251))
                  ->empty());
  EXPECT_EQ(collections.LookupExact(*txn, coll, "by_score", EncodeU64Key(9999))
                ->size(),
            1u);
  // Everything survives a restart.
  PartitionId pid = objects_->partition();
  txn.reset();
  objects_.reset();
  chunks_.reset();
  auto reopened = ChunkStore::Open(
      &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ObjectStore objects2(reopened->get(), pid, &registry_);
  CollectionStore collections2(&objects2, &key_fns, directory);
  auto txn2 = objects2.Begin();
  auto hits = collections2.LookupRange(*txn2, coll, "by_score",
                                       EncodeU64Key(0), EncodeU64Key(49));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 50u);
}

}  // namespace
}  // namespace tdb
