// Unit tests for the crypto substrate: known-answer vectors for SHA-1,
// SHA-256, DES, 3DES, AES-128, and HMAC, plus round-trip and negative tests
// for CBC mode and the suite registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/crypto/aes.h"
#include "src/crypto/cbc.h"
#include "src/crypto/des.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/suite.h"

namespace tdb {
namespace {

TEST(Sha1Test, KnownVectors) {
  EXPECT_EQ(HexEncode(Sha1::Hash(BytesFromString(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(HexEncode(Sha1::Hash(BytesFromString("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(HexEncode(Sha1::Hash(BytesFromString(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexEncode(h.Finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Bytes data = BytesFromString("the quick brown fox jumps over the lazy dog");
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha1 h;
    h.Update(ByteView(data.data(), split));
    h.Update(ByteView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.Finish(), Sha1::Hash(data)) << "split=" << split;
  }
}

TEST(Sha1Test, ReusableAfterFinish) {
  Sha1 h;
  h.Update(BytesFromString("abc"));
  Bytes first = h.Finish();
  h.Update(BytesFromString("abc"));
  EXPECT_EQ(h.Finish(), first);
}

TEST(Sha256Test, KnownVectors) {
  EXPECT_EQ(
      HexEncode(Sha256::Hash(BytesFromString(""))),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      HexEncode(Sha256::Hash(BytesFromString("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      HexEncode(Sha256::Hash(BytesFromString(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding boundaries.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    Bytes data(len, 'x');
    Sha256 h;
    h.Update(data);
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << "len=" << len;
  }
}

TEST(DesTest, Fips81KnownVector) {
  // FIPS PUB 81 example: key 0123456789abcdef, plaintext "Now is t".
  Bytes key = HexDecode("0123456789abcdef");
  Bytes plain = HexDecode("4e6f772069732074");
  auto des = Des::Create(key);
  ASSERT_TRUE(des.ok());
  uint8_t out[8];
  des->EncryptBlock(plain.data(), out);
  EXPECT_EQ(HexEncode(ByteView(out, 8)), "3fa40e8a984d4815");
  uint8_t back[8];
  des->DecryptBlock(out, back);
  EXPECT_EQ(Bytes(back, back + 8), plain);
}

TEST(DesTest, WeakKeyStillRoundTrips) {
  Bytes key = HexDecode("0101010101010101");
  auto des = Des::Create(key);
  ASSERT_TRUE(des.ok());
  Bytes plain = HexDecode("95f8a5e5dd31d900");
  uint8_t ct[8], back[8];
  des->EncryptBlock(plain.data(), ct);
  des->DecryptBlock(ct, back);
  EXPECT_EQ(Bytes(back, back + 8), plain);
}

TEST(DesTest, RejectsBadKeySize) {
  EXPECT_FALSE(Des::Create(HexDecode("0123456789")).ok());
}

TEST(TripleDesTest, KnownVector) {
  // NIST SP 800-67 style EDE3 vector with three distinct keys.
  Bytes key = HexDecode(
      "0123456789abcdef23456789abcdef01456789abcdef0123");
  Bytes plain = BytesFromString("The qufck");
  plain.resize(8);
  auto tdes = TripleDes::Create(key);
  ASSERT_TRUE(tdes.ok());
  uint8_t ct[8], back[8];
  tdes->EncryptBlock(plain.data(), ct);
  tdes->DecryptBlock(ct, back);
  EXPECT_EQ(Bytes(back, back + 8), plain);
}

TEST(TripleDesTest, DegeneratesToSingleDesWithRepeatedKey) {
  Bytes single = HexDecode("0123456789abcdef");
  Bytes triple;
  for (int i = 0; i < 3; ++i) {
    Append(triple, single);
  }
  auto des = Des::Create(single);
  auto tdes = TripleDes::Create(triple);
  ASSERT_TRUE(des.ok());
  ASSERT_TRUE(tdes.ok());
  Bytes plain = HexDecode("4e6f772069732074");
  uint8_t a[8], b[8];
  des->EncryptBlock(plain.data(), a);
  tdes->EncryptBlock(plain.data(), b);
  EXPECT_EQ(Bytes(a, a + 8), Bytes(b, b + 8));
}

TEST(Aes128Test, Fips197KnownVector) {
  Bytes key = HexDecode("000102030405060708090a0b0c0d0e0f");
  Bytes plain = HexDecode("00112233445566778899aabbccddeeff");
  auto aes = Aes128::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t ct[16];
  aes->EncryptBlock(plain.data(), ct);
  EXPECT_EQ(HexEncode(ByteView(ct, 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(Bytes(back, back + 16), plain);
}

TEST(HmacTest, Rfc2202Sha1Vectors) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha1(key, BytesFromString("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  EXPECT_EQ(HexEncode(HmacSha1(BytesFromString("Jefe"),
                               BytesFromString("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacTest, Rfc4231Sha256Vector) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(
      HexEncode(HmacSha256(key, BytesFromString("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes key(200, 0xaa);  // longer than the block size
  Bytes mac = HmacSha256(key, BytesFromString("data"));
  EXPECT_EQ(mac.size(), Sha256::kDigestSize);
}

class CbcRoundTripTest : public ::testing::TestWithParam<CipherAlg> {};

TEST_P(CbcRoundTripTest, RoundTripsAllSizes) {
  CryptoParams params;
  params.cipher = GetParam();
  params.hash = HashAlg::kSha256;
  params.key = Bytes(CipherKeySize(params.cipher), 0x42);
  auto suite = CryptoSuite::Create(params);
  ASSERT_TRUE(suite.ok());
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 100u, 1000u}) {
    Bytes plain(len);
    for (size_t i = 0; i < len; ++i) {
      plain[i] = static_cast<uint8_t>(i * 7);
    }
    Bytes ct = suite->Encrypt(plain);
    EXPECT_EQ(ct.size(), suite->CiphertextSize(len)) << "len=" << len;
    auto back = suite->Decrypt(ct);
    ASSERT_TRUE(back.ok()) << "len=" << len;
    EXPECT_EQ(*back, plain);
  }
}

TEST_P(CbcRoundTripTest, DistinctMessagesGetDistinctCiphertexts) {
  if (GetParam() == CipherAlg::kNone) {
    GTEST_SKIP() << "null cipher is deterministic by definition";
  }
  CryptoParams params;
  params.cipher = GetParam();
  params.hash = HashAlg::kSha256;
  params.key = Bytes(CipherKeySize(params.cipher), 0x42);
  auto suite = CryptoSuite::Create(params);
  ASSERT_TRUE(suite.ok());
  Bytes plain = BytesFromString("identical plaintext");
  // Same plaintext encrypted twice must differ (fresh IVs).
  EXPECT_NE(suite->Encrypt(plain), suite->Encrypt(plain));
}

INSTANTIATE_TEST_SUITE_P(AllCiphers, CbcRoundTripTest,
                         ::testing::Values(CipherAlg::kNone, CipherAlg::kDes,
                                           CipherAlg::kTripleDes,
                                           CipherAlg::kAes128));

TEST(CbcTest, RejectsTruncatedCiphertext) {
  auto aes = Aes128::Create(Bytes(16, 1));
  ASSERT_TRUE(aes.ok());
  Aes128Cbc cbc(*aes, "aes128-cbc");
  Bytes ct = cbc.Encrypt(BytesFromString("hello world"));
  EXPECT_FALSE(cbc.Decrypt(ByteView(ct.data(), ct.size() - 1)).ok());
  EXPECT_FALSE(cbc.Decrypt(ByteView(ct.data(), 16)).ok());
}

TEST(CbcTest, WrongKeyFailsPaddingOrGarbles) {
  auto aes1 = Aes128::Create(Bytes(16, 1));
  auto aes2 = Aes128::Create(Bytes(16, 2));
  Aes128Cbc enc(*aes1, "aes128-cbc");
  Aes128Cbc dec(*aes2, "aes128-cbc");
  Bytes plain = BytesFromString("some secret data here");
  Bytes ct = enc.Encrypt(plain);
  auto back = dec.Decrypt(ct);
  if (back.ok()) {
    EXPECT_NE(*back, plain);  // 1/256 chance padding accidentally validates
  }
}

// Regression: ReserveSeqs used a plain counter, so a backup stream reserving
// IVs while commits reserved from the same shared suite could hand out
// overlapping sequence ranges (CBC IV reuse). Racing reservers must get
// disjoint ranges; TSan additionally flags the old unsynchronized counter.
TEST(CbcTest, ConcurrentSeqReservationsAreDisjoint) {
  auto aes = Aes128::Create(Bytes(16, 1));
  ASSERT_TRUE(aes.ok());
  Aes128Cbc cbc(*aes, "aes128-cbc");

  constexpr int kThreads = 8;
  constexpr int kReservesPerThread = 2000;
  constexpr size_t kSpan = 3;  // each reservation claims seqs [first, first+2]
  std::vector<std::vector<uint64_t>> firsts(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cbc, &firsts, t] {
      firsts[t].reserve(kReservesPerThread);
      for (int i = 0; i < kReservesPerThread; ++i) {
        firsts[t].push_back(cbc.ReserveSeqs(kSpan));
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<uint64_t> all;
  for (const auto& per_thread : firsts) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kReservesPerThread));
  EXPECT_EQ(all.front(), 1u);  // first reservation continues the serial path
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[i], all[i - 1] + kSpan) << "overlapping IV ranges at " << i;
  }
}

TEST(SuiteTest, ParamsPickleRoundTrip) {
  CryptoParams params;
  params.cipher = CipherAlg::kTripleDes;
  params.hash = HashAlg::kSha1;
  params.key = Bytes(24, 7);
  PickleWriter w;
  params.Pickle(w);
  PickleReader r(w.data());
  auto back = CryptoParams::Unpickle(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cipher, params.cipher);
  EXPECT_EQ(back->hash, params.hash);
  EXPECT_EQ(back->key, params.key);
}

TEST(SuiteTest, RejectsMismatchedKeyLength) {
  CryptoParams params;
  params.cipher = CipherAlg::kAes128;
  params.hash = HashAlg::kSha256;
  params.key = Bytes(8, 1);  // too short for AES-128
  EXPECT_FALSE(CryptoSuite::Create(params).ok());
}

TEST(SuiteTest, MacIsKeyDependent) {
  CryptoParams a{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)};
  CryptoParams b{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 2)};
  auto sa = CryptoSuite::Create(a);
  auto sb = CryptoSuite::Create(b);
  ASSERT_TRUE(sa.ok() && sb.ok());
  Bytes data = BytesFromString("message");
  EXPECT_NE(sa->Mac(data), sb->Mac(data));
}

TEST(ConstantTimeEqualTest, Basics) {
  EXPECT_TRUE(ConstantTimeEqual(BytesFromString("abc"), BytesFromString("abc")));
  EXPECT_FALSE(ConstantTimeEqual(BytesFromString("abc"), BytesFromString("abd")));
  EXPECT_FALSE(ConstantTimeEqual(BytesFromString("abc"), BytesFromString("ab")));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

}  // namespace
}  // namespace tdb
