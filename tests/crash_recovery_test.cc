// Systematic crash injection: a fixed workload is run against a store whose
// device fails after exactly K writes, for every K from 0 to the workload's
// total write count; the machine then "loses power" (unflushed writes are
// discarded) and restarts. Recovery must always succeed, and the recovered
// state must equal the state at some completed-commit boundary consistent
// with how far the workload got — never a torn mixture and never a false
// tamper alarm.
//
// A second matrix fails the trusted store (the monotonic counter / register)
// instead, exercising the window between log durability and the trusted-
// store update, which is the subtle ordering the paper's commit protocol is
// all about (§4.8.2).

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/chunk/chunk_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/faulty_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

CryptoParams Params() {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 0x21)};
}

// A monotonic counter that fails after a countdown (a trusted store whose
// device dies mid-update).
class FaultyCounter final : public MonotonicCounter {
 public:
  explicit FaultyCounter(MonotonicCounter* base) : base_(base) {}
  Result<uint64_t> Read() const override { return base_->Read(); }
  Status AdvanceTo(uint64_t value) override {
    if (faulted_) {
      return IoError("injected fault: counter is down");
    }
    if (armed_) {
      if (advances_until_fault_ == 0) {
        faulted_ = true;
        return IoError("injected fault: counter write failed");
      }
      --advances_until_fault_;
    }
    return base_->AdvanceTo(value);
  }
  void FailAfter(uint64_t n) {
    armed_ = true;
    advances_until_fault_ = n;
    faulted_ = false;
  }

 private:
  MonotonicCounter* base_;
  bool armed_ = false;
  bool faulted_ = false;
  uint64_t advances_until_fault_ = 0;
};

// The deterministic workload: a list of commits, each a set of (slot ->
// value) writes or deallocations, with a checkpoint after commit 3. Slots
// are chunk ranks; values are small strings.
struct Step {
  std::map<int, std::optional<std::string>> changes;  // nullopt = dealloc
  bool checkpoint_after = false;
};

std::vector<Step> Workload() {
  // Note: the deallocation is the final step so that no later allocation can
  // reuse the freed rank (which would make two "slots" alias one chunk id
  // and confuse the reference model).
  return {
      {{{0, "a0"}, {1, "b0"}}, false},
      {{{2, "c0"}}, false},
      {{{0, "a1"}, {3, "d0"}}, true},  // checkpoint after this commit
      {{{4, "e0"}, {0, "a2"}}, false},
      {{{2, "c1"}}, false},
      {{{1, std::nullopt}}, false},  // dealloc slot 1
  };
}

// Expected (slot -> value) state after each completed commit.
std::vector<std::map<int, std::string>> ExpectedStates() {
  std::vector<std::map<int, std::string>> states;
  std::map<int, std::string> state;
  states.push_back(state);  // before any commit
  for (const Step& step : Workload()) {
    for (const auto& [slot, value] : step.changes) {
      if (value.has_value()) {
        state[slot] = *value;
      } else {
        state.erase(slot);
      }
    }
    states.push_back(state);
  }
  return states;
}

struct RunOutcome {
  int completed_commits = 0;
  uint64_t total_writes = 0;
};

// Runs the workload until an op fails; returns how far it got.
RunOutcome RunWorkload(ChunkStore& chunks, FaultyStore& device,
                       std::map<int, ChunkId>& slots) {
  RunOutcome outcome;
  auto pid = chunks.AllocatePartition();
  if (!pid.ok()) {
    return outcome;
  }
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, Params());
    if (!chunks.Commit(std::move(batch)).ok()) {
      return outcome;
    }
  }
  for (const Step& step : Workload()) {
    ChunkStore::Batch batch;
    bool prepare_failed = false;
    for (const auto& [slot, value] : step.changes) {
      if (value.has_value()) {
        if (slots.count(slot) == 0) {
          auto id = chunks.AllocateChunk(*pid);
          if (!id.ok()) {
            prepare_failed = true;
            break;
          }
          slots[slot] = *id;
        }
        batch.WriteChunk(slots[slot], BytesFromString(*value));
      } else {
        batch.DeallocateChunk(slots[slot]);
      }
    }
    if (prepare_failed || !chunks.Commit(std::move(batch)).ok()) {
      return outcome;
    }
    ++outcome.completed_commits;
    if (step.checkpoint_after && !chunks.Checkpoint().ok()) {
      return outcome;
    }
  }
  outcome.total_writes = device.write_count();
  return outcome;
}

// Checks that the reopened store's contents equal one of the expected
// states with index in [min_boundary, max_boundary].
void VerifyRecoveredState(ChunkStore& chunks,
                          const std::map<int, ChunkId>& slots,
                          int min_boundary, int max_boundary,
                          const std::string& context) {
  auto states = ExpectedStates();
  for (int boundary = max_boundary; boundary >= min_boundary; --boundary) {
    const auto& expected = states[boundary];
    bool match = true;
    for (const auto& [slot, id] : slots) {
      auto data = chunks.Read(id);
      auto want = expected.find(slot);
      if (want == expected.end()) {
        if (data.ok()) {
          match = false;
          break;
        }
      } else {
        if (!data.ok() || StringFromBytes(*data) != want->second) {
          match = false;
          break;
        }
      }
    }
    if (match) {
      return;  // consistent with a commit boundary
    }
  }
  FAIL() << context
         << ": recovered state matches no commit boundary in ["
         << min_boundary << ", " << max_boundary << "]";
}

class CrashMatrixTest : public ::testing::TestWithParam<ValidationMode> {};

INSTANTIATE_TEST_SUITE_P(BothModes, CrashMatrixTest,
                         ::testing::Values(ValidationMode::kCounter,
                                           ValidationMode::kDirectHash),
                         [](const auto& info) {
                           return info.param == ValidationMode::kCounter
                                      ? "Counter"
                                      : "DirectHash";
                         });

TEST_P(CrashMatrixTest, DeviceFailsAtEveryWriteBoundary) {
  // Baseline run to learn the total write count.
  uint64_t total_writes;
  {
    MemUntrustedStore mem({.segment_size = 16 * 1024, .num_segments = 128});
    FaultyStore device(&mem);
    MemSecretStore secret(Bytes(32, 0xA5));
    MemTamperResistantRegister reg;
    MemMonotonicCounter counter;
    ChunkStoreOptions options;
    options.validation.mode = GetParam();
    auto cs = ChunkStore::Create(
        &device, TrustedServices{&secret, &reg, &counter}, options);
    ASSERT_TRUE(cs.ok());
    std::map<int, ChunkId> slots;
    RunOutcome outcome = RunWorkload(**cs, device, slots);
    ASSERT_EQ(outcome.completed_commits, 6);
    total_writes = outcome.total_writes;
  }
  ASSERT_GT(total_writes, 10u);

  for (uint64_t k = 0; k <= total_writes; ++k) {
    MemUntrustedStore mem({.segment_size = 16 * 1024, .num_segments = 128});
    FaultyStore device(&mem);
    MemSecretStore secret(Bytes(32, 0xA5));
    MemTamperResistantRegister reg;
    MemMonotonicCounter counter;
    ChunkStoreOptions options;
    options.validation.mode = GetParam();
    TrustedServices trusted{&secret, &reg, &counter};
    std::map<int, ChunkId> slots;
    int completed = 0;
    {
      auto cs = ChunkStore::Create(&device, trusted, options);
      if (!cs.ok()) {
        continue;  // fault hit during formatting; nothing to recover
      }
      device.FailAfterWrites(k);
      RunOutcome outcome = RunWorkload(**cs, device, slots);
      completed = outcome.completed_commits;
    }
    // Power failure: unflushed writes evaporate; reopen from the raw store.
    mem.Crash();
    device.ClearFault();
    auto reopened = ChunkStore::Open(&mem, trusted, options);
    if (completed == 0 && slots.empty()) {
      continue;  // nothing observable was committed
    }
    ASSERT_TRUE(reopened.ok())
        << "k=" << k << " completed=" << completed
        << " open: " << reopened.status();
    // The recovered state must be a commit boundary between `completed`
    // (everything that returned success must persist) and completed+1 (a
    // torn final commit may legitimately have become durable before the
    // injected failure).
    VerifyRecoveredState(**reopened, slots, completed,
                         std::min(completed + 1, 6),
                         "k=" + std::to_string(k));
  }
}

TEST(CrashCounterTest, TrustedStoreFailsAtEveryAdvance) {
  // Fail the monotonic counter after each possible number of advances; a
  // commit whose counter write failed may be lost or kept, but recovery must
  // never signal tampering and never lose *earlier* commits.
  for (uint64_t k = 0; k < 12; ++k) {
    MemUntrustedStore mem({.segment_size = 16 * 1024, .num_segments = 128});
    FaultyStore device(&mem);
    MemSecretStore secret(Bytes(32, 0xA5));
    MemMonotonicCounter real_counter;
    FaultyCounter counter(&real_counter);
    ChunkStoreOptions options;
    options.validation.mode = ValidationMode::kCounter;
    TrustedServices trusted{&secret, nullptr, &counter};
    std::map<int, ChunkId> slots;
    int completed = 0;
    {
      auto cs = ChunkStore::Create(&device, trusted, options);
      if (!cs.ok()) {
        continue;
      }
      counter.FailAfter(k);
      RunOutcome outcome = RunWorkload(**cs, device, slots);
      completed = outcome.completed_commits;
    }
    mem.Crash();
    counter.FailAfter(~0ULL);  // healthy again
    auto reopened = ChunkStore::Open(&mem, trusted, options);
    if (completed == 0 && slots.empty()) {
      continue;
    }
    ASSERT_TRUE(reopened.ok())
        << "k=" << k << " completed=" << completed
        << " open: " << reopened.status();
    VerifyRecoveredState(**reopened, slots, completed,
                         std::min(completed + 1, 6),
                         "counter k=" + std::to_string(k));
  }
}

}  // namespace
}  // namespace tdb
