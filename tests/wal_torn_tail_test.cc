// WAL torn-tail sweep and determinism tests.
//
// Torn tail: a crash can truncate the write-ahead log at any byte offset.
// For every possible cut point, Wal::Recover must replay exactly the
// fully-committed prefix of the log — no error, no partial application of
// the torn record.
//
// Determinism: the WAL byte image must be a pure function of the committed
// pages, independent of std::unordered_map iteration order (regression test
// for LogCommit pickling pages in hash-table order).

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "src/xdb/pager.h"
#include "src/xdb/wal.h"

namespace tdb {
namespace {

Bytes Val(const std::string& s) { return BytesFromString(s); }

// Replays `log` and returns the applied (page -> data) map; asserts Recover
// itself reports success.
std::map<uint32_t, Bytes> Replay(const Bytes& log) {
  MemAppendFile file;
  EXPECT_TRUE(file.Append(log).ok());
  Wal wal(&file);
  std::map<uint32_t, Bytes> applied;
  Status s = wal.Recover([&](uint32_t page_no, ByteView data) {
    applied[page_no] = Bytes(data.begin(), data.end());
    return OkStatus();
  });
  EXPECT_TRUE(s.ok()) << s;
  return applied;
}

TEST(WalTornTailTest, TruncateAtEveryByteOffset) {
  // Three commits; remember the log length after each so every cut point can
  // be mapped to the commits that must survive it.
  MemAppendFile file;
  Wal wal(&file);
  std::vector<std::unordered_map<uint32_t, Bytes>> commits = {
      {{1, Val("A1")}, {2, Val("B1")}},
      {{1, Val("A2")}, {3, Val("C1")}},
      {{2, Val("B2")}, {4, Val("D1")}, {5, Val("E1")}},
  };
  std::vector<uint64_t> ends;  // log size after each commit
  std::vector<std::map<uint32_t, Bytes>> states;  // expected state after each
  std::map<uint32_t, Bytes> state;
  states.push_back(state);
  for (const auto& commit : commits) {
    ASSERT_TRUE(wal.LogCommit(commit).ok());
    ends.push_back(file.size());
    for (const auto& [page_no, data] : commit) {
      state[page_no] = data;
    }
    states.push_back(state);
  }
  auto full = file.ReadAll();
  ASSERT_TRUE(full.ok());

  for (size_t cut = 0; cut <= full->size(); ++cut) {
    // The committed prefix is every commit whose record ends at or before
    // the cut.
    size_t committed = 0;
    while (committed < ends.size() && ends[committed] <= cut) {
      ++committed;
    }
    Bytes torn(full->begin(), full->begin() + cut);
    std::map<uint32_t, Bytes> applied = Replay(torn);
    EXPECT_EQ(applied, states[committed])
        << "cut=" << cut << " committed=" << committed
        << ": torn tail must replay exactly the fully-committed prefix";
  }
}

TEST(WalTornTailTest, TornTailDoesNotPoisonLaterAppends) {
  // Recover over a torn tail, then append a new commit: the new commit must
  // replay (the torn bytes are dead weight but harmless). This mirrors what
  // Xdb::Open + a subsequent commit would do without the checkpoint
  // truncation step.
  MemAppendFile file;
  Wal wal(&file);
  ASSERT_TRUE(wal.LogCommit({{1, Val("A1")}}).ok());
  uint64_t end1 = file.size();
  ASSERT_TRUE(wal.LogCommit({{2, Val("B1")}}).ok());
  auto full = file.ReadAll();
  ASSERT_TRUE(full.ok());
  // Cut mid-way through the second record.
  size_t cut = end1 + (full->size() - end1) / 2;
  Bytes torn(full->begin(), full->begin() + cut);
  std::map<uint32_t, Bytes> applied = Replay(torn);
  EXPECT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[1], Val("A1"));
}

TEST(WalDeterminismTest, SameCommitSameBytes) {
  // Insert the same pages into two unordered_maps in opposite orders (many
  // pages, so bucket-chain order genuinely differs) and commit each. The WAL
  // byte images must be identical.
  std::unordered_map<uint32_t, Bytes> forward;
  std::unordered_map<uint32_t, Bytes> reverse;
  for (uint32_t i = 0; i < 64; ++i) {
    forward[i * 7 + 1] = Val("v" + std::to_string(i));
  }
  for (uint32_t i = 64; i-- > 0;) {
    reverse[i * 7 + 1] = Val("v" + std::to_string(i));
  }
  MemAppendFile f1, f2;
  Wal w1(&f1), w2(&f2);
  ASSERT_TRUE(w1.LogCommit(forward).ok());
  ASSERT_TRUE(w2.LogCommit(reverse).ok());
  auto b1 = f1.ReadAll();
  auto b2 = f2.ReadAll();
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_EQ(*b1, *b2)
      << "WAL image must not depend on hash-table iteration order";
}

TEST(WalDeterminismTest, PagesReplayInPageNumberOrder) {
  // The record stores pages sorted by page number; replay order follows it.
  std::unordered_map<uint32_t, Bytes> pages;
  pages[42] = Val("z");
  pages[7] = Val("a");
  pages[1000] = Val("m");
  MemAppendFile file;
  Wal wal(&file);
  ASSERT_TRUE(wal.LogCommit(pages).ok());
  std::vector<uint32_t> order;
  ASSERT_TRUE(wal.Recover([&](uint32_t page_no, ByteView) {
                    order.push_back(page_no);
                    return OkStatus();
                  })
                  .ok());
  EXPECT_EQ(order, (std::vector<uint32_t>{7, 42, 1000}));
}

}  // namespace
}  // namespace tdb
