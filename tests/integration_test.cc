// End-to-end integration tests: the full stack on file-backed stores (real
// fdatasync durability), system-tree growth past one map chunk of
// partitions, concurrent transactions preserving an invariant, and cleaning
// under multi-partition churn with snapshots.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "src/chunk/chunk_store.h"
#include "src/common/rng.h"
#include "src/object/object_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

CryptoParams Params(uint8_t fill) {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, fill)};
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FileBackedIntegrationTest, FullLifecycleOnRealFiles) {
  std::string store_path = TempPath("tdb_integration.db");
  std::string counter_path = TempPath("tdb_integration.ctr");
  std::remove(store_path.c_str());
  std::remove((counter_path + ".slot0").c_str());
  std::remove((counter_path + ".slot1").c_str());

  MemSecretStore secret(Bytes(32, 0xA5));
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  UntrustedStoreOptions store_options{.segment_size = 64 * 1024,
                                      .num_segments = 128};
  std::vector<ChunkId> ids;
  PartitionId partition;
  {
    auto file_store = FileUntrustedStore::Open(store_path, store_options);
    ASSERT_TRUE(file_store.ok());
    auto counter = FileMonotonicCounter::Open(counter_path);
    ASSERT_TRUE(counter.ok());
    auto cs = ChunkStore::Create(
        file_store->get(),
        TrustedServices{&secret, nullptr, counter->get()}, options);
    ASSERT_TRUE(cs.ok()) << cs.status();
    auto pid = (*cs)->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, Params(1));
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
    partition = *pid;
    for (int i = 0; i < 50; ++i) {
      ChunkId id = *(*cs)->AllocateChunk(partition);
      ids.push_back(id);
      ASSERT_TRUE(
          (*cs)->WriteChunk(id, BytesFromString("file " + std::to_string(i)))
              .ok());
    }
    ASSERT_TRUE((*cs)->Checkpoint().ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*cs)->WriteChunk(ids[i], BytesFromString("updated")).ok());
    }
    // Destructors close the files: simulating a clean shutdown mid-residual.
  }
  {
    auto file_store = FileUntrustedStore::Open(store_path, store_options);
    auto counter = FileMonotonicCounter::Open(counter_path);
    auto cs = ChunkStore::Open(
        file_store->get(),
        TrustedServices{&secret, nullptr, counter->get()}, options);
    ASSERT_TRUE(cs.ok()) << cs.status();
    EXPECT_EQ(*(*cs)->Read(ids[5]), BytesFromString("updated"));
    EXPECT_EQ(*(*cs)->Read(ids[30]), BytesFromString("file 30"));
  }
  std::remove(store_path.c_str());
  std::remove((counter_path + ".slot0").c_str());
  std::remove((counter_path + ".slot1").c_str());
}

TEST(SystemTreeGrowthTest, ManyPartitionsGrowTheParitionMap) {
  // More partitions than one map chunk's fanout (64) forces the system
  // partition's own tree to two levels.
  MemUntrustedStore mem({.segment_size = 64 * 1024, .num_segments = 1024});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  TrustedServices trusted{&secret, nullptr, &counter};
  std::vector<std::pair<PartitionId, ChunkId>> data;
  {
    auto cs = ChunkStore::Create(&mem, trusted, options);
    ASSERT_TRUE(cs.ok());
    for (int p = 0; p < 100; ++p) {
      auto pid = (*cs)->AllocatePartition();
      ASSERT_TRUE(pid.ok());
      ChunkStore::Batch batch;
      batch.WritePartition(*pid, Params(static_cast<uint8_t>(p)));
      ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
      ChunkId id = *(*cs)->AllocateChunk(*pid);
      ASSERT_TRUE(
          (*cs)->WriteChunk(id, BytesFromString("p" + std::to_string(p))).ok());
      data.emplace_back(*pid, id);
    }
    ASSERT_TRUE((*cs)->Checkpoint().ok());
  }
  auto cs = ChunkStore::Open(&mem, trusted, options);
  ASSERT_TRUE(cs.ok()) << cs.status();
  EXPECT_EQ((*cs)->ListPartitions().size(), 100u);
  for (int p = 0; p < 100; ++p) {
    EXPECT_EQ(*(*cs)->Read(data[p].second),
              BytesFromString("p" + std::to_string(p)));
  }
}

// A bank: concurrent transfers must conserve the total balance
// (serializability under 2PL with timeout retries).
class BankAccount final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 500;
  BankAccount() = default;
  explicit BankAccount(int64_t balance) : balance(balance) {}
  int64_t balance = 0;
  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override { w.WriteI64(balance); }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto account = std::make_shared<BankAccount>();
    account->balance = r.ReadI64();
    return ObjectPtr(account);
  }
};

TEST(ConcurrencyIntegrationTest, ConcurrentTransfersConserveTotal) {
  MemUntrustedStore mem({.segment_size = 64 * 1024, .num_segments = 1024});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  auto cs = ChunkStore::Create(
      &mem, TrustedServices{&secret, nullptr, &counter}, options);
  ASSERT_TRUE(cs.ok());
  TypeRegistry registry;
  ASSERT_TRUE(RegisterType<BankAccount>(registry).ok());
  auto pid = (*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, Params(1));
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  ObjectStore objects(cs->get(), *pid, &registry,
                      {.lock_timeout = std::chrono::milliseconds(200)});

  constexpr int kAccounts = 8;
  constexpr int64_t kInitial = 1000;
  std::vector<ObjectId> accounts;
  {
    auto txn = objects.Begin();
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(*txn->Insert(std::make_shared<BankAccount>(kInitial)));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        size_t from = rng.NextBelow(kAccounts);
        size_t to = rng.NextBelow(kAccounts);
        if (from == to) {
          continue;
        }
        // Acquire in id order to avoid deadlock; retry on timeout anyway.
        if (accounts[to] < accounts[from]) {
          std::swap(from, to);
        }
        for (int attempt = 0; attempt < 5; ++attempt) {
          auto txn = objects.Begin();
          auto a = txn->GetForUpdate(accounts[from]);
          auto b = txn->GetForUpdate(accounts[to]);
          if (!a.ok() || !b.ok()) {
            txn->Abort();
            continue;
          }
          int64_t amount = static_cast<int64_t>(rng.NextBelow(50));
          auto from_account = std::dynamic_pointer_cast<const BankAccount>(*a);
          auto to_account = std::dynamic_pointer_cast<const BankAccount>(*b);
          (void)txn->Put(accounts[from], std::make_shared<BankAccount>(
                                             from_account->balance - amount));
          (void)txn->Put(accounts[to], std::make_shared<BankAccount>(
                                           to_account->balance + amount));
          if (txn->Commit().ok()) {
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  int64_t total = 0;
  auto txn = objects.Begin();
  for (ObjectId id : accounts) {
    auto account = std::dynamic_pointer_cast<const BankAccount>(*txn->Get(id));
    total += account->balance;
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(ChurnIntegrationTest, SnapshotsSurviveHeavyChurnAndCleaning) {
  MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 256});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  options.checkpoint_dirty_threshold = 128;
  TrustedServices trusted{&secret, nullptr, &counter};
  auto cs = ChunkStore::Create(&mem, trusted, options);
  ASSERT_TRUE(cs.ok());
  auto pid = (*cs)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, Params(1));
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  }
  Rng rng(31337);
  std::vector<ChunkId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(*(*cs)->AllocateChunk(*pid));
  }
  // Take snapshots at several points during heavy churn; auto-checkpoint and
  // auto-clean kick in along the way (the store is deliberately small).
  std::vector<std::pair<PartitionId, std::vector<Bytes>>> snapshots;
  for (int round = 0; round < 30; ++round) {
    ChunkStore::Batch batch;
    std::vector<Bytes> contents;
    for (ChunkId id : ids) {
      Bytes data = rng.NextBytes(200 + rng.NextBelow(400));
      contents.push_back(data);
      batch.WriteChunk(id, std::move(data));
    }
    ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok()) << "round " << round;
    if (round % 10 == 4) {
      auto snap = (*cs)->AllocatePartition();
      ChunkStore::Batch copy;
      copy.CopyPartition(*snap, *pid);
      ASSERT_TRUE((*cs)->Commit(std::move(copy)).ok());
      snapshots.emplace_back(*snap, contents);
    }
  }
  ASSERT_TRUE((*cs)->Checkpoint().ok());
  ASSERT_TRUE((*cs)->Clean(1000).ok());
  // All snapshots still validate after cleaning and a restart.
  cs->reset();
  auto reopened = ChunkStore::Open(&mem, trusted, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  for (const auto& [snap, contents] : snapshots) {
    for (size_t i = 0; i < ids.size(); ++i) {
      auto data = (*reopened)->Read(ChunkId(snap, ids[i].position));
      ASSERT_TRUE(data.ok()) << data.status();
      EXPECT_EQ(*data, contents[i]);
    }
  }
}

}  // namespace
}  // namespace tdb
