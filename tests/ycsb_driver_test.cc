// Tests for the YCSB driver: the standard mixes, load/publish semantics,
// runs against both backends (in-process object store and wire
// client/server over loopback), determinism of the generated op stream
// under a fixed seed, and scan/RMW behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "src/net/loopback.h"
#include "src/obs/metrics.h"
#include "src/server/blob.h"
#include "src/server/server.h"
#include "src/workload/ycsb.h"

namespace tdb::workload {
namespace {

class YcsbDriverTest : public ::testing::Test {
 protected:
  YcsbDriverTest()
      : store_({.segment_size = 16384, .num_segments = 1024}),
        secret_(Bytes(32, 0xA5)) {
    options_.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
    auto pid = chunks_->AllocatePartition();
    EXPECT_TRUE(pid.ok());
    partition_ = *pid;
    ChunkStore::Batch batch;
    batch.WritePartition(partition_, CryptoParams{CipherAlg::kAes128,
                                                  HashAlg::kSha256,
                                                  Bytes(16, 0x5C)});
    EXPECT_TRUE(chunks_->Commit(std::move(batch)).ok());
    EXPECT_TRUE(RegisterType<server::BlobValue>(registry_).ok());

    ObjectStoreOptions object_options;
    object_options.group_commit = true;
    object_options.cache_capacity = 64;  // < records: force chunk reads
    objects_ = std::make_unique<ObjectStore>(chunks_.get(), partition_,
                                             &registry_, object_options);
  }

  WorkloadSpec SmallSpec(char mix) {
    auto spec = WorkloadSpec::StandardMix(mix);
    EXPECT_TRUE(spec.ok());
    spec->record_count = 200;
    spec->value_min = 16;
    spec->value_max = 64;
    return *spec;
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions options_;
  std::unique_ptr<ChunkStore> chunks_;
  PartitionId partition_ = 0;
  TypeRegistry registry_;
  std::unique_ptr<ObjectStore> objects_;
};

TEST_F(YcsbDriverTest, StandardMixesMatchYcsb) {
  struct Expect {
    char mix;
    double read, update, insert, scan, rmw;
    KeyDistributionKind dist;
  };
  const Expect table[] = {
      {'A', 0.5, 0.5, 0, 0, 0, KeyDistributionKind::kZipfian},
      {'B', 0.95, 0.05, 0, 0, 0, KeyDistributionKind::kZipfian},
      {'C', 1.0, 0, 0, 0, 0, KeyDistributionKind::kZipfian},
      {'D', 0.95, 0, 0.05, 0, 0, KeyDistributionKind::kLatest},
      {'E', 0, 0, 0.05, 0.95, 0, KeyDistributionKind::kZipfian},
      {'F', 0.5, 0, 0, 0, 0.5, KeyDistributionKind::kZipfian},
  };
  for (const Expect& e : table) {
    auto spec = WorkloadSpec::StandardMix(e.mix);
    ASSERT_TRUE(spec.ok()) << e.mix;
    EXPECT_DOUBLE_EQ(spec->read, e.read) << e.mix;
    EXPECT_DOUBLE_EQ(spec->update, e.update) << e.mix;
    EXPECT_DOUBLE_EQ(spec->insert, e.insert) << e.mix;
    EXPECT_DOUBLE_EQ(spec->scan, e.scan) << e.mix;
    EXPECT_DOUBLE_EQ(spec->rmw, e.rmw) << e.mix;
    EXPECT_EQ(spec->dist, e.dist) << e.mix;
  }
  EXPECT_FALSE(WorkloadSpec::StandardMix('G').ok());
  EXPECT_TRUE(WorkloadSpec::StandardMix('a').ok());  // case-insensitive
}

TEST_F(YcsbDriverTest, LoadPublishesEveryRecord) {
  WorkloadSpec spec = SmallSpec('C');
  YcsbDriver driver(spec, DriverOptions{});
  InProcessBackend backend(objects_.get());
  KeyTable table;
  ASSERT_TRUE(driver.Load(backend, table).ok());
  EXPECT_EQ(table.size(), spec.record_count);
  // Every published id is readable.
  ASSERT_TRUE(backend.Begin().ok());
  for (uint64_t i = 0; i < table.size(); ++i) {
    auto size = backend.Read(table.Get(i));
    ASSERT_TRUE(size.ok()) << "key " << i;
    EXPECT_GE(*size, spec.value_min);
    EXPECT_LE(*size, spec.value_max);
  }
  ASSERT_TRUE(backend.Commit().ok());
}

TEST_F(YcsbDriverTest, RunsEveryMixAgainstLocalBackend) {
  for (char mix : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    WorkloadSpec spec = SmallSpec(mix);
    DriverOptions options;
    options.operations = 300;
    options.threads = 2;
    YcsbDriver driver(spec, options);
    KeyTable table;
    InProcessBackend loader(objects_.get());
    ASSERT_TRUE(driver.Load(loader, table).ok()) << mix;

    InProcessBackend b0(objects_.get());
    InProcessBackend b1(objects_.get());
    DriverResult result = driver.Run({&b0, &b1}, table);
    ASSERT_TRUE(result.status.ok()) << mix << ": " << result.status.ToString();
    EXPECT_GT(result.txns_committed, 0u) << mix;
    EXPECT_GT(result.ops(), 0u) << mix;
    EXPECT_EQ(result.txn_latency.count, result.txns_committed) << mix;
    // Mix-specific shape checks.
    if (mix == 'C') {
      EXPECT_EQ(result.ops(), result.reads) << "C is read-only";
    }
    if (mix == 'E') {
      EXPECT_GT(result.scans, 0u);
      EXPECT_GE(result.scan_items, result.scans) << "scans touch >= 1 key";
      EXPECT_EQ(result.reads, 0u);
    }
    if (mix == 'F') {
      EXPECT_GT(result.rmws, 0u);
      EXPECT_GT(result.bytes_written, 0u);
    }
    if (spec.insert > 0.0) {
      EXPECT_EQ(table.size(), spec.record_count + result.inserts)
          << mix << ": committed inserts must be published";
    } else {
      EXPECT_EQ(table.size(), spec.record_count) << mix;
    }
  }
}

TEST_F(YcsbDriverTest, RunsAgainstWireBackend) {
  net::LoopbackTransport transport;
  server::TdbServerOptions server_options;
  server_options.group_commit = true;
  server_options.cache_capacity = 64;
  server::TdbServer server(chunks_.get(), partition_, &registry_,
                           server_options);
  ASSERT_TRUE(server.Start(&transport, "ycsb").ok());

  WorkloadSpec spec = SmallSpec('A');
  DriverOptions options;
  options.operations = 200;
  YcsbDriver driver(spec, options);
  KeyTable table;

  std::vector<std::unique_ptr<WireBackend>> backends;
  std::vector<YcsbBackend*> ptrs;
  for (int i = 0; i < 2; ++i) {
    backends.push_back(std::make_unique<WireBackend>(&registry_));
    ASSERT_TRUE(backends.back()->Connect(&transport, server.address()).ok());
    ptrs.push_back(backends.back().get());
  }
  ASSERT_TRUE(driver.Load(*backends[0], table).ok());
  DriverResult result = driver.Run(ptrs, table);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.txns_committed, 0u);
  EXPECT_GT(result.reads + result.updates, 0u);

  // The wire path hits the same partition: a local transaction can read
  // what the wire workload wrote.
  InProcessBackend local(objects_.get());
  ASSERT_TRUE(local.Begin().ok());
  EXPECT_TRUE(local.Read(table.Get(0)).ok());
  ASSERT_TRUE(local.Commit().ok());

  backends.clear();
  server.Stop();
}

TEST_F(YcsbDriverTest, SingleThreadOpStreamIsDeterministic) {
  // With one thread there are no lock timeouts, so a fixed seed must
  // reproduce the exact op mix; a different seed should not.
  auto run = [&](uint64_t seed) {
    WorkloadSpec spec = SmallSpec('A');
    DriverOptions options;
    options.operations = 250;
    options.seed = seed;
    YcsbDriver driver(spec, options);
    KeyTable table;
    InProcessBackend backend(objects_.get());
    EXPECT_TRUE(driver.Load(backend, table).ok());
    DriverResult result = driver.Run({&backend}, table);
    EXPECT_TRUE(result.status.ok());
    return std::make_tuple(result.reads, result.updates, result.bytes_written);
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST_F(YcsbDriverTest, SnapshotReadsServeReadOnlyMixes) {
  WorkloadSpec spec = SmallSpec('C');
  DriverOptions options;
  options.operations = 400;
  options.snapshot_reads = true;
  YcsbDriver driver(spec, options);
  KeyTable table;
  InProcessBackend loader(objects_.get());
  ASSERT_TRUE(driver.Load(loader, table).ok());

  auto& metrics = obs::MetricsRegistry::Instance();
  metrics.Enable();
  metrics.Reset();
  InProcessBackend b0(objects_.get());
  InProcessBackend b1(objects_.get());
  DriverResult result = driver.Run({&b0, &b1}, table);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.ops(), result.reads);
  EXPECT_GT(result.txns_committed, 0u);
  // Mix C is pure reads, so every transaction ran as a snapshot
  // transaction and the LockManager was never touched.
  EXPECT_EQ(metrics.GetCounter("lock.acquires"), 0u);
  metrics.Disable();
}

TEST_F(YcsbDriverTest, ReadTailLatencyIsBounded) {
  // Regression guard for the read-path tail: pure reads must not queue
  // behind commit-side maintenance (checkpoint/clean under the chunk-store
  // mutex), which once pushed p999 three orders of magnitude past p99. The
  // bound is deliberately loose (scheduler noise, sanitizer builds) and the
  // run is retried, so only a systematic stall can fail it.
  WorkloadSpec spec = SmallSpec('C');
  constexpr double kP999BoundUs = 20000.0;  // 20 ms; healthy runs sit ~100x under
  double best = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    DriverOptions options;
    options.operations = 1000;
    options.seed = 42 + attempt;
    options.snapshot_reads = true;
    YcsbDriver driver(spec, options);
    KeyTable table;
    InProcessBackend loader(objects_.get());
    ASSERT_TRUE(driver.Load(loader, table).ok());
    InProcessBackend b0(objects_.get());
    InProcessBackend b1(objects_.get());
    InProcessBackend b2(objects_.get());
    InProcessBackend b3(objects_.get());
    DriverResult result = driver.Run({&b0, &b1, &b2, &b3}, table);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    best = attempt == 0 ? result.txn_latency.p999_us
                        : std::min(best, result.txn_latency.p999_us);
    if (best <= kP999BoundUs) {
      return;
    }
  }
  FAIL() << "read-only p999 stayed above " << kP999BoundUs
         << " us across 3 runs (best " << best << " us)";
}

TEST_F(YcsbDriverTest, StopFlagHaltsAnOpenEndedRun) {
  WorkloadSpec spec = SmallSpec('B');
  std::atomic<bool> stop{false};
  DriverOptions options;
  options.operations = ~0ULL;  // unbounded: only `stop` can end the run
  options.stop = &stop;
  YcsbDriver driver(spec, options);
  KeyTable table;
  InProcessBackend loader(objects_.get());
  ASSERT_TRUE(driver.Load(loader, table).ok());

  InProcessBackend backend(objects_.get());
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
  });
  DriverResult result = driver.Run({&backend}, table);
  stopper.join();
  EXPECT_TRUE(result.status.ok());
  EXPECT_GT(result.ops(), 0u);
}

}  // namespace
}  // namespace tdb::workload
