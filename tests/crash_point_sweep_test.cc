// Exhaustive crash-point injection sweep (the ALICE / torn-write
// discipline): every durability-relevant device operation — segment write,
// flush, superblock write, trusted-store update, archival write, XDB page
// write / WAL append / truncate — is a numbered crash point. Each workload
// first runs to completion against instrumented devices to learn its total
// point count N, then replays N times crashing at every point k, under
// several device semantics:
//
//   drop-unflushed  power loss: writes that were never Flush()ed evaporate
//                   (MemUntrustedStore::Crash), the in-flight op vanishes
//   keep, tear=0    the in-flight op vanishes but all earlier writes stay
//                   (a write-through device)
//   keep, tear=0.5  half of the in-flight write's bytes reach the device
//   keep, tear=1.0  all of the in-flight write's bytes reach the device but
//                   the op still reports failure (crash after DMA, before
//                   the ack)
//
// After every crash the stores are reopened from the *raw* devices and the
// sweep asserts the crash-consistency contract (DESIGN.md): recovery
// succeeds, no false tamper alarm, every acknowledged commit is intact,
// no torn mixture of states is visible, and the store (including the
// trusted register/counter) is still fully usable.
//
// Workloads: batch commit, checkpoint, segment clean, backup write, backup
// restore, XDB WAL commit, trusted-register advance (file-backed, torn at
// every byte), and a file-backed chunk store sweep.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/backup/backup_store.h"
#include "src/chunk/chunk_store.h"
#include "src/common/crash_point.h"
#include "src/platform/crash_point_trusted.h"
#include "src/platform/trusted_store.h"
#include "src/store/archival_store.h"
#include "src/store/crash_point_store.h"
#include "src/store/untrusted_store.h"
#include "src/xdb/crash_point_files.h"
#include "src/xdb/xdb.h"

namespace tdb {
namespace {

CryptoParams Params() {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 0x21)};
}

// Device semantics for one sweep configuration.
struct CrashConfig {
  bool drop_unflushed = false;  // power loss discards unflushed writes
  double tear = 0.0;            // prefix fraction of the in-flight write kept
  const char* name = "";
};

constexpr CrashConfig kFullMatrix[] = {
    {true, 0.0, "drop"},
    {false, 0.0, "keep"},
    {false, 0.5, "keep+tear0.5"},
    {false, 1.0, "keep+tear1.0"},
};
// Reduced matrix for the heavier workloads.
constexpr CrashConfig kReducedMatrix[] = {
    {true, 0.0, "drop"},
    {false, 0.5, "keep+tear0.5"},
};

// ---------------------------------------------------------------------------
// Chunk-store workloads: a list of steps, each a commit of (slot -> value)
// changes, optionally followed by a checkpoint or a clean. Checkpoints and
// cleans do not change the logical (slot -> value) state, which is exactly
// the property the sweep verifies across their crash windows.

struct Step {
  std::map<int, std::optional<std::string>> changes;  // nullopt = dealloc
  bool checkpoint_after = false;
  bool clean_after = false;
};

std::vector<Step> CommitWorkload() {
  return {
      {{{0, "a0"}, {1, "b0"}}, false, false},
      {{{2, "c0"}}, false, false},
      {{{0, "a1"}, {3, "d0"}}, true, false},
      {{{4, "e0"}, {0, "a2"}}, false, false},
      {{{2, "c1"}}, false, false},
      {{{1, std::nullopt}}, false, false},
  };
}

std::vector<Step> CheckpointWorkload() {
  // Checkpoint-heavy: three checkpoints at different log shapes, including
  // back-to-back checkpoints with no intervening commit.
  return {
      {{{0, "a0"}, {1, "b0"}}, true, false},
      {{{0, "a1"}}, true, false},
      {{{2, "c0"}, {3, "d0"}}, false, false},
      {{{1, std::nullopt}, {4, "e0"}}, true, false},
      {{{3, "d1"}}, false, false},
  };
}

std::vector<Step> CleanWorkload() {
  // Big values on a small-segment store; repeated overwrites leave mostly-
  // dead segments behind, the checkpoint rotates them out of the residual
  // log, and the clean step rewrites the survivors.
  std::string v(700, 'x');
  auto val = [&](char c) {
    std::string s = v;
    s[0] = c;
    return s;
  };
  return {
      {{{0, val('a')}, {1, val('b')}, {2, val('c')}}, false, false},
      {{{3, val('d')}, {4, val('e')}}, false, false},
      {{{0, val('f')}, {1, val('g')}}, false, false},
      {{{2, val('h')}, {3, val('i')}}, true, false},
      {{{0, val('j')}, {4, val('k')}}, true, false},
      {{}, false, true},  // clean
      {{{1, val('l')}}, false, false},
  };
}

// Logical (slot -> value) state after each acknowledged step.
std::vector<std::map<int, std::string>> BoundaryStates(
    const std::vector<Step>& steps) {
  std::vector<std::map<int, std::string>> states;
  std::map<int, std::string> state;
  states.push_back(state);
  for (const Step& step : steps) {
    for (const auto& [slot, value] : step.changes) {
      if (value.has_value()) {
        state[slot] = *value;
      } else {
        state.erase(slot);
      }
    }
    states.push_back(state);
  }
  return states;
}

struct RunResult {
  bool store_created = false;    // ChunkStore::Create acknowledged
  bool partition_ready = false;  // the partition-create commit acknowledged
  int completed = 0;             // acknowledged steps
  size_t segments_cleaned = 0;
  PartitionId pid = 0;
};

// Runs the workload until an operation fails; returns how far it got.
RunResult RunSteps(ChunkStore& chunks, const std::vector<Step>& steps,
                   std::map<int, ChunkId>& slots) {
  RunResult r;
  r.store_created = true;
  auto pid = chunks.AllocatePartition();
  if (!pid.ok()) {
    return r;
  }
  r.pid = *pid;
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, Params());
    if (!chunks.Commit(std::move(batch)).ok()) {
      return r;
    }
  }
  r.partition_ready = true;
  for (const Step& step : steps) {
    if (!step.changes.empty()) {
      ChunkStore::Batch batch;
      bool prepare_failed = false;
      for (const auto& [slot, value] : step.changes) {
        if (value.has_value()) {
          if (slots.count(slot) == 0) {
            auto id = chunks.AllocateChunk(*pid);
            if (!id.ok()) {
              prepare_failed = true;
              break;
            }
            slots[slot] = *id;
          }
          batch.WriteChunk(slots[slot], BytesFromString(*value));
        } else {
          batch.DeallocateChunk(slots[slot]);
        }
      }
      if (prepare_failed || !chunks.Commit(std::move(batch)).ok()) {
        return r;
      }
    }
    ++r.completed;
    if (step.checkpoint_after && !chunks.Checkpoint().ok()) {
      return r;
    }
    if (step.clean_after) {
      auto cleaned = chunks.Clean(4);
      if (!cleaned.ok()) {
        return r;
      }
      r.segments_cleaned += *cleaned;
    }
  }
  return r;
}

// Checks that the reopened store's contents equal one of the boundary states
// with index in [min_boundary, max_boundary].
void VerifyBoundary(ChunkStore& chunks, const std::map<int, ChunkId>& slots,
                    const std::vector<Step>& steps, int min_boundary,
                    int max_boundary, const std::string& context) {
  auto states = BoundaryStates(steps);
  for (int boundary = max_boundary; boundary >= min_boundary; --boundary) {
    const auto& expected = states[boundary];
    bool match = true;
    for (const auto& [slot, id] : slots) {
      auto data = chunks.Read(id);
      auto want = expected.find(slot);
      if (want == expected.end()) {
        if (data.ok()) {
          match = false;
          break;
        }
      } else {
        if (!data.ok() || StringFromBytes(*data) != want->second) {
          match = false;
          break;
        }
      }
    }
    if (match) {
      return;
    }
  }
  FAIL() << context << ": recovered state matches no commit boundary in ["
         << min_boundary << ", " << max_boundary << "]";
}

// The recovered store — trusted register/counter included — must be fully
// usable: allocate, commit, read back, checkpoint.
void ProbeUsable(ChunkStore& chunks, const std::string& context) {
  auto pid = chunks.AllocatePartition();
  ASSERT_TRUE(pid.ok()) << context << ": " << pid.status();
  ChunkStore::Batch batch;
  batch.WritePartition(*pid, Params());
  Status commit = chunks.Commit(std::move(batch));
  ASSERT_TRUE(commit.ok()) << context << ": " << commit;
  auto id = chunks.AllocateChunk(*pid);
  ASSERT_TRUE(id.ok()) << context << ": " << id.status();
  Status write = chunks.WriteChunk(*id, BytesFromString("probe"));
  ASSERT_TRUE(write.ok()) << context << ": " << write;
  auto back = chunks.Read(*id);
  ASSERT_TRUE(back.ok()) << context << ": " << back.status();
  EXPECT_EQ(StringFromBytes(*back), "probe") << context;
  Status ckpt = chunks.Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << context << ": " << ckpt;
}

// All the devices of one in-memory run: the raw stores plus their
// crash-point instrumented wrappers sharing one controller.
struct MemEnv {
  MemUntrustedStore mem;
  CrashPointController ctl;
  CrashPointStore store;
  MemSecretStore secret{Bytes(32, 0xA5)};
  MemTamperResistantRegister reg;
  CrashPointRegister creg;
  MemMonotonicCounter counter;
  CrashPointCounter ccounter;

  explicit MemEnv(UntrustedStoreOptions uopts)
      : mem(uopts),
        store(&mem, &ctl),
        creg(&reg, &ctl),
        ccounter(&counter, &ctl) {}

  TrustedServices injected() { return {&secret, &creg, &ccounter}; }
  TrustedServices raw() { return {&secret, &reg, &counter}; }
};

ChunkStoreOptions StoreOptions(ValidationMode mode) {
  ChunkStoreOptions options;
  options.validation.mode = mode;
  options.crypto_threads = 1;  // keep point numbering cheap to reason about
  return options;
}

// Runs workload/crash/recover/verify for one (k, config) cell. Returns the
// point count observed (for the learning pass).
uint64_t SweepCell(ValidationMode mode, UntrustedStoreOptions uopts,
                   const std::vector<Step>& steps, uint64_t k,
                   const CrashConfig& cfg, size_t* cleaned_out = nullptr) {
  MemEnv env(uopts);
  ChunkStoreOptions options = StoreOptions(mode);
  env.ctl.Arm(k, cfg.tear);
  std::map<int, ChunkId> slots;
  RunResult run;
  {
    auto cs = ChunkStore::Create(&env.store, env.injected(), options);
    if (cs.ok()) {
      run = RunSteps(**cs, steps, slots);
    }
  }
  uint64_t points = env.ctl.points();
  if (cleaned_out != nullptr) {
    *cleaned_out = run.segments_cleaned;
  }
  std::string context = std::string(cfg.name) + " k=" + std::to_string(k) +
                        " completed=" + std::to_string(run.completed);
  if (k != CrashPointController::kNeverCrash) {
    EXPECT_TRUE(env.ctl.crashed()) << context << ": crash point never reached";
  }
  if (cfg.drop_unflushed) {
    env.mem.Crash();  // power loss: unflushed writes evaporate
  }
  env.ctl.Disarm();
  auto reopened = ChunkStore::Open(&env.mem, env.raw(), options);
  if (!reopened.ok()) {
    // Acceptable only when the store was never durably formatted — and a
    // half-formatted store must read as absent, never as tampered.
    EXPECT_NE(reopened.status().code(), StatusCode::kTamperDetected)
        << context << ": " << reopened.status();
    EXPECT_FALSE(run.store_created)
        << context << ": formatted store failed to reopen: "
        << reopened.status();
    return points;
  }
  VerifyBoundary(**reopened, slots, steps, run.completed,
                 std::min<int>(run.completed + 1, steps.size()), context);
  ProbeUsable(**reopened, context);
  return points;
}

// Learning pass + full enumeration for one chunk-store workload.
void SweepChunkWorkload(ValidationMode mode, UntrustedStoreOptions uopts,
                        const std::vector<Step>& steps, const char* name,
                        const CrashConfig* configs, size_t num_configs,
                        bool expect_clean = false) {
  size_t cleaned = 0;
  uint64_t total_points =
      SweepCell(mode, uopts, steps, CrashPointController::kNeverCrash,
                kFullMatrix[1], &cleaned);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ASSERT_GT(total_points, 10u) << name;
  if (expect_clean) {
    ASSERT_GE(cleaned, 1u) << name << ": workload never cleaned a segment";
  }
  ::testing::Test::RecordProperty(std::string("points_") + name,
                                  static_cast<int>(total_points));
  std::printf("[ sweep    ] %s: %llu crash points x %zu configs\n", name,
              static_cast<unsigned long long>(total_points), num_configs);
  for (size_t c = 0; c < num_configs; ++c) {
    for (uint64_t k = 0; k < total_points; ++k) {
      SweepCell(mode, uopts, steps, k, configs[c]);
      ASSERT_FALSE(::testing::Test::HasFatalFailure())
          << name << " config=" << configs[c].name << " k=" << k;
    }
  }
}

class CrashSweepTest : public ::testing::TestWithParam<ValidationMode> {};

INSTANTIATE_TEST_SUITE_P(BothModes, CrashSweepTest,
                         ::testing::Values(ValidationMode::kCounter,
                                           ValidationMode::kDirectHash),
                         [](const auto& info) {
                           return info.param == ValidationMode::kCounter
                                      ? "Counter"
                                      : "DirectHash";
                         });

TEST_P(CrashSweepTest, CommitWorkloadEveryPoint) {
  SweepChunkWorkload(GetParam(),
                     {.segment_size = 16 * 1024, .num_segments = 128},
                     CommitWorkload(), "commit", kFullMatrix, 4);
}

TEST_P(CrashSweepTest, CheckpointWorkloadEveryPoint) {
  SweepChunkWorkload(GetParam(),
                     {.segment_size = 16 * 1024, .num_segments = 128},
                     CheckpointWorkload(), "checkpoint", kFullMatrix, 4);
}

TEST_P(CrashSweepTest, CleanWorkloadEveryPoint) {
  SweepChunkWorkload(GetParam(), {.segment_size = 4096, .num_segments = 64},
                     CleanWorkload(), "clean", kReducedMatrix, 2,
                     /*expect_clean=*/true);
}

// ---------------------------------------------------------------------------
// Backup workloads.

// An archival sink that exposes every written byte immediately (unlike
// MemArchive, which only publishes at Close) so torn streams are observable.
class CapturingSink final : public ArchivalSink {
 public:
  explicit CapturingSink(Bytes* out) : out_(out) {}
  Status Write(ByteView data) override {
    Append(*out_, data);
    return OkStatus();
  }
  Status Close() override { return OkStatus(); }

 private:
  Bytes* out_;
};

class BytesSource final : public ArchivalSource {
 public:
  explicit BytesSource(Bytes data) : data_(std::move(data)) {}
  Result<Bytes> Read(size_t n) override {
    n = std::min(n, data_.size() - pos_);
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

 private:
  Bytes data_;
  size_t pos_ = 0;
};

std::vector<Step> BackupPopulateWorkload() {
  return {
      {{{0, "a0"}, {1, "b0"}, {2, "c0"}}, false, false},
      {{{0, "a1"}, {3, "d0"}}, true, false},
  };
}

// Populates a store (no injection), then runs CreateBackupSet with the
// controller armed. Crash points cover both the snapshot commit on the chunk
// store and the archival-sink writes.
TEST_P(CrashSweepTest, BackupWriteEveryPoint) {
  const UntrustedStoreOptions uopts{.segment_size = 16 * 1024,
                                    .num_segments = 128};
  const auto steps = BackupPopulateWorkload();
  const auto final_state = BoundaryStates(steps).back();
  ChunkStoreOptions options = StoreOptions(GetParam());

  // Learning pass.
  uint64_t total_points = 0;
  PartitionId learned_pid = 0;
  {
    MemEnv env(uopts);
    auto cs = ChunkStore::Create(&env.store, env.injected(), options);
    ASSERT_TRUE(cs.ok());
    std::map<int, ChunkId> slots;
    RunResult run = RunSteps(**cs, steps, slots);
    ASSERT_EQ(run.completed, static_cast<int>(steps.size()));
    learned_pid = run.pid;
    Bytes stream;
    CapturingSink cap(&stream);
    CrashPointSink sink(&cap, &env.ctl);
    env.ctl.Arm(CrashPointController::kNeverCrash);
    BackupStore backup(cs->get());
    auto created = backup.CreateBackupSet({{run.pid, 0}},
                                          /*set_id=*/777, /*created_unix=*/1,
                                          &sink);
    ASSERT_TRUE(created.ok()) << created.status();
    ASSERT_TRUE(sink.Close().ok());
    total_points = env.ctl.points();
  }
  ASSERT_GT(total_points, 5u);
  ::testing::Test::RecordProperty("points_backup_write",
                                  static_cast<int>(total_points));
  std::printf("[ sweep    ] backup_write: %llu crash points x 4 configs\n",
              static_cast<unsigned long long>(total_points));

  for (const CrashConfig& cfg : kFullMatrix) {
    for (uint64_t k = 0; k < total_points; ++k) {
      std::string context = std::string("backup_write ") + cfg.name +
                            " k=" + std::to_string(k);
      MemEnv env(uopts);
      std::map<int, ChunkId> slots;
      Bytes stream;
      PartitionId pid = learned_pid;
      {
        auto cs = ChunkStore::Create(&env.store, env.injected(), options);
        ASSERT_TRUE(cs.ok()) << context;
        RunResult run = RunSteps(**cs, steps, slots);
        ASSERT_EQ(run.completed, static_cast<int>(steps.size())) << context;
        pid = run.pid;
        CapturingSink cap(&stream);
        CrashPointSink sink(&cap, &env.ctl);
        env.ctl.Arm(k, cfg.tear);
        BackupStore backup(cs->get());
        auto created = backup.CreateBackupSet({{pid, 0}}, 777, 1, &sink);
        Status closed = sink.Close();
        // The backup is acknowledged only when BOTH CreateBackupSet and the
        // sink close succeed. k < N, so the crash must trip in one of them:
        // the last learned point is the caller's Close, which fires after
        // CreateBackupSet has already returned OK.
        EXPECT_FALSE(created.ok() && closed.ok()) << context;
      }
      EXPECT_TRUE(env.ctl.crashed()) << context;
      if (cfg.drop_unflushed) {
        env.mem.Crash();
      }
      env.ctl.Disarm();

      // 1. The source store recovers with every acknowledged commit intact —
      //    a crashed backup never perturbs source data.
      auto reopened = ChunkStore::Open(&env.mem, env.raw(), options);
      ASSERT_TRUE(reopened.ok()) << context << ": " << reopened.status();
      for (const auto& [slot, id] : slots) {
        auto data = (*reopened)->Read(id);
        auto want = final_state.find(slot);
        ASSERT_TRUE(want != final_state.end() && data.ok() &&
                    StringFromBytes(*data) == want->second)
            << context << " slot=" << slot;
      }
      ProbeUsable(**reopened, context);
      ASSERT_FALSE(::testing::Test::HasFatalFailure()) << context;

      // 2. The torn stream either restores completely (crash landed after
      //    the last stream byte) or fails cleanly — as truncation/corruption,
      //    never a tamper alarm, and never a partial application.
      MemEnv fresh(uopts);
      auto target = ChunkStore::Create(&fresh.mem, fresh.raw(), options);
      ASSERT_TRUE(target.ok()) << context;
      BackupStore restorer(target->get());
      BytesSource source(stream);
      auto restored = restorer.RestoreStream(&source);
      if (restored.ok()) {
        for (const auto& [slot, id] : slots) {
          auto data = (*target)->Read(id);
          auto want = final_state.find(slot);
          ASSERT_TRUE(want != final_state.end() && data.ok() &&
                      StringFromBytes(*data) == want->second)
              << context << " restored slot=" << slot;
        }
      } else {
        EXPECT_NE(restored.status().code(), StatusCode::kTamperDetected)
            << context << ": torn stream must fail as corrupt, not tampered: "
            << restored.status();
        EXPECT_FALSE((*target)->PartitionExists(pid))
            << context << ": failed restore must apply nothing";
      }
      ASSERT_FALSE(::testing::Test::HasFatalFailure()) << context;
    }
  }
}

// Crash points inside RestoreStream: the restore commit on the target store.
TEST_P(CrashSweepTest, BackupRestoreEveryPoint) {
  const UntrustedStoreOptions uopts{.segment_size = 16 * 1024,
                                    .num_segments = 128};
  const auto steps = BackupPopulateWorkload();
  const auto final_state = BoundaryStates(steps).back();
  ChunkStoreOptions options = StoreOptions(GetParam());

  // Produce one complete stream.
  Bytes stream;
  std::map<int, ChunkId> slots;
  PartitionId pid = 0;
  {
    MemEnv env(uopts);
    auto cs = ChunkStore::Create(&env.mem, env.raw(), options);
    ASSERT_TRUE(cs.ok());
    RunResult run = RunSteps(**cs, steps, slots);
    ASSERT_EQ(run.completed, static_cast<int>(steps.size()));
    pid = run.pid;
    CapturingSink cap(&stream);
    BackupStore backup(cs->get());
    auto created = backup.CreateBackupSet({{pid, 0}}, 777, 1, &cap);
    ASSERT_TRUE(created.ok()) << created.status();
  }

  // Learning pass: restore into a fresh store with an armed (never-crash)
  // controller to count the restore commit's points.
  uint64_t total_points = 0;
  {
    MemEnv env(uopts);
    auto cs = ChunkStore::Create(&env.store, env.injected(), options);
    ASSERT_TRUE(cs.ok());
    env.ctl.Arm(CrashPointController::kNeverCrash);
    BackupStore restorer(cs->get());
    BytesSource source(stream);
    auto restored = restorer.RestoreStream(&source);
    ASSERT_TRUE(restored.ok()) << restored.status();
    total_points = env.ctl.points();
  }
  ASSERT_GT(total_points, 3u);
  ::testing::Test::RecordProperty("points_backup_restore",
                                  static_cast<int>(total_points));
  std::printf("[ sweep    ] backup_restore: %llu crash points x 4 configs\n",
              static_cast<unsigned long long>(total_points));

  for (const CrashConfig& cfg : kFullMatrix) {
    for (uint64_t k = 0; k < total_points; ++k) {
      std::string context = std::string("backup_restore ") + cfg.name +
                            " k=" + std::to_string(k);
      MemEnv env(uopts);
      bool restore_acked = false;
      {
        auto cs = ChunkStore::Create(&env.store, env.injected(), options);
        ASSERT_TRUE(cs.ok()) << context;
        env.ctl.Arm(k, cfg.tear);
        BackupStore restorer(cs->get());
        BytesSource source(stream);
        restore_acked = restorer.RestoreStream(&source).ok();
      }
      EXPECT_TRUE(env.ctl.crashed()) << context;
      if (cfg.drop_unflushed) {
        env.mem.Crash();
      }
      env.ctl.Disarm();
      auto reopened = ChunkStore::Open(&env.mem, env.raw(), options);
      ASSERT_TRUE(reopened.ok()) << context << ": " << reopened.status();
      // Restore is all-or-nothing; an unacknowledged restore may have become
      // durable just before the crash, but never partially.
      bool applied = (*reopened)->PartitionExists(pid);
      if (restore_acked) {
        EXPECT_TRUE(applied) << context;
      }
      if (applied) {
        for (const auto& [slot, id] : slots) {
          auto data = (*reopened)->Read(id);
          auto want = final_state.find(slot);
          ASSERT_TRUE(want != final_state.end() && data.ok() &&
                      StringFromBytes(*data) == want->second)
              << context << " slot=" << slot;
        }
      } else {
        for (const auto& [slot, id] : slots) {
          EXPECT_FALSE((*reopened)->Read(id).ok())
              << context << ": partial restore visible at slot " << slot;
        }
      }
      ProbeUsable(**reopened, context);
      ASSERT_FALSE(::testing::Test::HasFatalFailure()) << context;
    }
  }
}

// ---------------------------------------------------------------------------
// XDB WAL commit workload.

struct XdbStep {
  std::map<std::string, std::optional<std::string>> kv;
  bool checkpoint_after = false;
};

std::vector<XdbStep> XdbWorkload() {
  return {
      {{{"k1", "v1"}, {"k2", "v2"}}, false},
      {{{"k1", "v1b"}, {"k3", "v3"}}, true},
      {{{"k2", std::nullopt}, {"k4", "v4"}}, false},
      {{{"k5", "v5"}, {"k3", "v3b"}}, false},
  };
}

std::vector<std::map<std::string, std::string>> XdbBoundaryStates(
    const std::vector<XdbStep>& steps) {
  std::vector<std::map<std::string, std::string>> states;
  std::map<std::string, std::string> state;
  states.push_back(state);
  for (const XdbStep& step : steps) {
    for (const auto& [key, value] : step.kv) {
      if (value.has_value()) {
        state[key] = *value;
      } else {
        state.erase(key);
      }
    }
    states.push_back(state);
  }
  return states;
}

TEST(CrashSweepXdbTest, WalCommitEveryPoint) {
  const auto steps = XdbWorkload();
  const auto states = XdbBoundaryStates(steps);
  std::vector<std::string> all_keys;
  for (const auto& state : states) {
    for (const auto& [key, value] : state) {
      if (std::find(all_keys.begin(), all_keys.end(), key) == all_keys.end()) {
        all_keys.push_back(key);
      }
    }
  }

  auto run_once = [&](CrashPointController& ctl, MemPageFile& data,
                      MemAppendFile& log, bool& create_ok) -> int {
    CrashPointPageFile cdata(&data, &ctl);
    CrashPointAppendFile clog(&log, &ctl);
    create_ok = false;
    auto db = Xdb::Create(&cdata, &clog, {.cache_pages = 8});
    if (!db.ok()) {
      return 0;
    }
    if (!(*db)->CreateTree("t").ok() || !(*db)->Commit().ok()) {
      return 0;
    }
    create_ok = true;
    int completed = 0;
    for (const XdbStep& step : steps) {
      for (const auto& [key, value] : step.kv) {
        Status s = value.has_value()
                       ? (*db)->Put("t", BytesFromString(key),
                                    BytesFromString(*value))
                       : (*db)->Delete("t", BytesFromString(key));
        if (!s.ok()) {
          return completed;
        }
      }
      if (!(*db)->Commit().ok()) {
        return completed;
      }
      ++completed;
      if (step.checkpoint_after && !(*db)->Checkpoint().ok()) {
        return completed;
      }
    }
    return completed;
  };

  // Learning pass.
  uint64_t total_points = 0;
  {
    CrashPointController ctl;
    MemPageFile data(256);
    MemAppendFile log;
    ctl.Arm(CrashPointController::kNeverCrash);
    bool create_ok = false;
    int completed = run_once(ctl, data, log, create_ok);
    ASSERT_TRUE(create_ok);
    ASSERT_EQ(completed, static_cast<int>(steps.size()));
    total_points = ctl.points();
  }
  ASSERT_GT(total_points, 10u);
  ::testing::Test::RecordProperty("points_xdb_wal",
                                  static_cast<int>(total_points));
  std::printf("[ sweep    ] xdb_wal: %llu crash points x 3 tears\n",
              static_cast<unsigned long long>(total_points));

  // MemPageFile/MemAppendFile are write-through (no device cache), so the
  // sweep covers the keep-all-issued semantics at three tear fractions.
  for (double tear : {0.0, 0.5, 1.0}) {
    for (uint64_t k = 0; k < total_points; ++k) {
      std::string context = "xdb tear=" + std::to_string(tear) +
                            " k=" + std::to_string(k);
      CrashPointController ctl;
      MemPageFile data(256);
      MemAppendFile log;
      ctl.Arm(k, tear);
      bool create_ok = false;
      int completed = run_once(ctl, data, log, create_ok);
      EXPECT_TRUE(ctl.crashed()) << context;
      ctl.Disarm();
      if (!create_ok) {
        continue;  // crashed while formatting; nothing was promised yet
      }
      // Reboot: reopen from the raw files; WAL replay must succeed.
      auto db = Xdb::Open(&data, &log, {.cache_pages = 8});
      ASSERT_TRUE(db.ok()) << context << ": " << db.status();
      bool matched = false;
      for (int boundary = std::min<int>(completed + 1, steps.size());
           boundary >= completed && !matched; --boundary) {
        const auto& expected = states[boundary];
        bool match = true;
        for (const auto& key : all_keys) {
          auto got = (*db)->Get("t", BytesFromString(key));
          auto want = expected.find(key);
          if (want == expected.end()) {
            if (got.ok()) {
              match = false;
              break;
            }
          } else {
            if (!got.ok() || StringFromBytes(*got) != want->second) {
              match = false;
              break;
            }
          }
        }
        matched = match;
      }
      ASSERT_TRUE(matched)
          << context << ": recovered XDB state matches no commit boundary in ["
          << completed << ", " << std::min<int>(completed + 1, steps.size())
          << "]";
      // Still usable end to end.
      ASSERT_TRUE(
          (*db)->Put("t", BytesFromString("probe"), BytesFromString("p")).ok())
          << context;
      ASSERT_TRUE((*db)->Commit().ok()) << context;
      auto probe = (*db)->Get("t", BytesFromString("probe"));
      ASSERT_TRUE(probe.ok() && StringFromBytes(*probe) == "p") << context;
    }
  }
}

// ---------------------------------------------------------------------------
// Trusted-register advance, file-backed: tear the in-flight slot file at
// every byte offset. fopen("wb") truncates before writing, so a torn write
// leaves a prefix of the *new* slot; the reader must fall back to the other
// slot (the previous value) and the register must stay writable.

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = ::testing::TempDir() + "/tdb_sweep_" + tag + "_" +
            std::to_string(::getpid());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CrashSweepTrustedTest, FileRegisterTornSlotEveryByte) {
  TempDir dir("reg");
  uint64_t points_swept = 0;
  for (int j = 1; j <= 3; ++j) {
    // Value written by the i-th Write call (1-based).
    auto value = [](int i) { return Bytes(16, static_cast<uint8_t>(0x40 + i)); };
    // Learn the full slot file size for the (j+1)-th write.
    std::string base = dir.path() + "/reg_probe";
    {
      auto reg = FileTamperResistantRegister::Open(base);
      ASSERT_TRUE(reg.ok());
      for (int i = 1; i <= j + 1; ++i) {
        ASSERT_TRUE((*reg)->Write(value(i)).ok());
      }
    }
    int slot = (j + 1) % 2;
    std::string slot_path =
        FileTamperResistantRegister::SlotPathForTesting(base, slot);
    uintmax_t full_size = std::filesystem::file_size(slot_path);
    ASSERT_GT(full_size, 0u);

    for (uintmax_t t = 0; t < full_size; ++t) {
      std::string b = dir.path() + "/reg_j" + std::to_string(j) + "_t" +
                      std::to_string(t);
      {
        auto reg = FileTamperResistantRegister::Open(b);
        ASSERT_TRUE(reg.ok());
        for (int i = 1; i <= j + 1; ++i) {
          ASSERT_TRUE((*reg)->Write(value(i)).ok());
        }
      }
      // Crash mid-write of slot file j+1: only the first t bytes persisted.
      std::filesystem::resize_file(
          FileTamperResistantRegister::SlotPathForTesting(b, slot), t);
      auto reg = FileTamperResistantRegister::Open(b);
      ASSERT_TRUE(reg.ok()) << "j=" << j << " t=" << t;
      auto got = (*reg)->Read();
      ASSERT_TRUE(got.ok()) << "j=" << j << " t=" << t;
      EXPECT_EQ(*got, value(j)) << "torn slot must yield the previous value, "
                                << "j=" << j << " t=" << t;
      // Still writable, and the new value wins.
      ASSERT_TRUE((*reg)->Write(value(9)).ok()) << "j=" << j << " t=" << t;
      auto reg2 = FileTamperResistantRegister::Open(b);
      ASSERT_TRUE(reg2.ok());
      auto got2 = (*reg2)->Read();
      ASSERT_TRUE(got2.ok() && *got2 == value(9)) << "j=" << j << " t=" << t;
      ++points_swept;
    }
  }
  ::testing::Test::RecordProperty("points_register_advance",
                                  static_cast<int>(points_swept));
  std::printf("[ sweep    ] register_advance: %llu torn-byte points\n",
              static_cast<unsigned long long>(points_swept));
}

TEST(CrashSweepTrustedTest, FileCounterTornSlotEveryByte) {
  TempDir dir("ctr");
  // Advance 10, 20, 30; tear the slot file of the final advance at every
  // byte. The counter must read 20 and remain advanceable.
  std::string probe = dir.path() + "/ctr_probe";
  {
    auto ctr = FileMonotonicCounter::Open(probe);
    ASSERT_TRUE(ctr.ok());
    ASSERT_TRUE((*ctr)->AdvanceTo(10).ok());
    ASSERT_TRUE((*ctr)->AdvanceTo(20).ok());
    ASSERT_TRUE((*ctr)->AdvanceTo(30).ok());
  }
  int slot = 3 % 2;
  uintmax_t full_size = std::filesystem::file_size(
      FileTamperResistantRegister::SlotPathForTesting(probe, slot));
  for (uintmax_t t = 0; t < full_size; ++t) {
    std::string b = dir.path() + "/ctr_t" + std::to_string(t);
    {
      auto ctr = FileMonotonicCounter::Open(b);
      ASSERT_TRUE(ctr.ok());
      ASSERT_TRUE((*ctr)->AdvanceTo(10).ok());
      ASSERT_TRUE((*ctr)->AdvanceTo(20).ok());
      ASSERT_TRUE((*ctr)->AdvanceTo(30).ok());
    }
    std::filesystem::resize_file(
        FileTamperResistantRegister::SlotPathForTesting(b, slot), t);
    auto ctr = FileMonotonicCounter::Open(b);
    ASSERT_TRUE(ctr.ok()) << "t=" << t;
    auto got = (*ctr)->Read();
    ASSERT_TRUE(got.ok()) << "t=" << t;
    EXPECT_EQ(*got, 20u) << "t=" << t;
    ASSERT_TRUE((*ctr)->AdvanceTo(40).ok()) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// File-backed chunk store: the same commit workload against
// FileUntrustedStore + FileTamperResistantRegister + FileMonotonicCounter.
// pwrite-based devices are write-through, so this covers the keep-all
// semantics (with and without tearing) against the real file formats —
// including the dual-slot crash-atomic superblock.

TEST_P(CrashSweepTest, FileBackedStoreEveryPoint) {
  const UntrustedStoreOptions uopts{.segment_size = 8 * 1024,
                                    .num_segments = 64};
  const auto steps = CommitWorkload();
  ChunkStoreOptions options = StoreOptions(GetParam());
  TempDir dir(GetParam() == ValidationMode::kCounter ? "filestore_ctr"
                                                     : "filestore_reg");

  auto run_cycle = [&](const std::string& run_dir, uint64_t k, double tear,
                       uint64_t* points_out) {
    std::filesystem::create_directories(run_dir);
    std::string context = "file k=" + std::to_string(k) +
                          " tear=" + std::to_string(tear);
    CrashPointController ctl;
    MemSecretStore secret(Bytes(32, 0xA5));
    std::map<int, ChunkId> slots;
    RunResult run;
    {
      auto file = FileUntrustedStore::Open(run_dir + "/store", uopts);
      ASSERT_TRUE(file.ok()) << context;
      auto freg = FileTamperResistantRegister::Open(run_dir + "/reg");
      ASSERT_TRUE(freg.ok()) << context;
      auto fctr = FileMonotonicCounter::Open(run_dir + "/ctr");
      ASSERT_TRUE(fctr.ok()) << context;
      CrashPointStore store(file->get(), &ctl);
      CrashPointRegister creg(freg->get(), &ctl);
      CrashPointCounter cctr(fctr->get(), &ctl);
      ctl.Arm(k, tear);
      auto cs = ChunkStore::Create(
          &store, TrustedServices{&secret, &creg, &cctr}, options);
      if (cs.ok()) {
        run = RunSteps(**cs, steps, slots);
      }
    }
    if (points_out != nullptr) {
      *points_out = ctl.points();
    }
    if (k != CrashPointController::kNeverCrash) {
      EXPECT_TRUE(ctl.crashed()) << context;
    } else {
      EXPECT_EQ(run.completed, static_cast<int>(steps.size())) << context;
    }
    // Reboot: open everything fresh from the files.
    auto file = FileUntrustedStore::Open(run_dir + "/store", uopts);
    ASSERT_TRUE(file.ok()) << context;
    auto freg = FileTamperResistantRegister::Open(run_dir + "/reg");
    ASSERT_TRUE(freg.ok()) << context;
    auto fctr = FileMonotonicCounter::Open(run_dir + "/ctr");
    ASSERT_TRUE(fctr.ok()) << context;
    TrustedServices raw{&secret, freg->get(), fctr->get()};
    auto reopened = ChunkStore::Open(file->get(), raw, options);
    if (!reopened.ok()) {
      EXPECT_NE(reopened.status().code(), StatusCode::kTamperDetected)
          << context << ": " << reopened.status();
      EXPECT_FALSE(run.store_created)
          << context << ": formatted store failed to reopen: "
          << reopened.status();
      return;
    }
    VerifyBoundary(**reopened, slots, steps, run.completed,
                   std::min<int>(run.completed + 1, steps.size()), context);
    ProbeUsable(**reopened, context);
  };

  uint64_t total_points = 0;
  run_cycle(dir.path() + "/learn", CrashPointController::kNeverCrash, 0.0,
            &total_points);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ASSERT_GT(total_points, 10u);
  ::testing::Test::RecordProperty("points_file_backed",
                                  static_cast<int>(total_points));
  std::printf("[ sweep    ] file_backed: %llu crash points x 2 tears\n",
              static_cast<unsigned long long>(total_points));

  for (double tear : {0.0, 0.5}) {
    for (uint64_t k = 0; k < total_points; ++k) {
      std::string run_dir = dir.path() + "/t" + std::to_string(tear) + "_k" +
                            std::to_string(k);
      run_cycle(run_dir, k, tear, nullptr);
      ASSERT_FALSE(::testing::Test::HasFatalFailure())
          << "file tear=" << tear << " k=" << k;
      std::filesystem::remove_all(run_dir);
    }
  }
}

}  // namespace
}  // namespace tdb
