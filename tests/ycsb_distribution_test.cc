// Tests for the workload key/value distributions: determinism under a fixed
// seed, bound safety (including key-space growth mid-stream), and skew
// sanity — zipfian and hotspot must concentrate mass the way they claim, and
// uniform must pass a chi-square-style evenness check.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/distributions.h"

namespace tdb::workload {
namespace {

constexpr uint64_t kN = 1000;
constexpr int kDraws = 100000;

std::vector<uint64_t> Draw(KeyDistributionKind kind, uint64_t seed, int count,
                           uint64_t n) {
  Rng rng(seed);
  KeyDistribution dist(kind, n);
  std::vector<uint64_t> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    out.push_back(dist.Next(rng, n));
  }
  return out;
}

TEST(Distributions, DeterministicUnderFixedSeed) {
  for (KeyDistributionKind kind :
       {KeyDistributionKind::kUniform, KeyDistributionKind::kZipfian,
        KeyDistributionKind::kHotspot, KeyDistributionKind::kLatest}) {
    EXPECT_EQ(Draw(kind, 7, 2000, kN), Draw(kind, 7, 2000, kN))
        << KeyDistributionName(kind);
    EXPECT_NE(Draw(kind, 7, 2000, kN), Draw(kind, 8, 2000, kN))
        << KeyDistributionName(kind) << " ignores its seed";
  }
}

TEST(Distributions, EveryDrawIsInBounds) {
  for (KeyDistributionKind kind :
       {KeyDistributionKind::kUniform, KeyDistributionKind::kZipfian,
        KeyDistributionKind::kHotspot, KeyDistributionKind::kLatest}) {
    for (uint64_t n : {uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{17}, kN}) {
      Rng rng(11);
      KeyDistribution dist(kind, n);
      for (int i = 0; i < 5000; ++i) {
        EXPECT_LT(dist.Next(rng, n), n) << KeyDistributionName(kind);
      }
    }
  }
}

TEST(Distributions, BoundsHoldWhileKeySpaceGrows) {
  for (KeyDistributionKind kind :
       {KeyDistributionKind::kUniform, KeyDistributionKind::kZipfian,
        KeyDistributionKind::kHotspot, KeyDistributionKind::kLatest}) {
    Rng rng(13);
    KeyDistribution dist(kind, 10);
    uint64_t n = 10;
    for (int i = 0; i < 20000; ++i) {
      if (i % 37 == 0) {
        ++n;  // an insert was acknowledged
      }
      EXPECT_LT(dist.Next(rng, n), n) << KeyDistributionName(kind);
    }
  }
}

TEST(Distributions, UniformPassesChiSquare) {
  // 20 equal-width buckets over [0, kN). With 100k draws the expected count
  // is 5000 per bucket; the chi-square statistic over 19 degrees of freedom
  // has a 99.9% quantile of ~43.8. A generous 60 keeps the test stable
  // across seeds while still catching a broken generator by miles.
  std::vector<uint64_t> draws =
      Draw(KeyDistributionKind::kUniform, 17, kDraws, kN);
  constexpr int kBuckets = 20;
  double expected = static_cast<double>(kDraws) / kBuckets;
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t d : draws) {
    ++counts[d * kBuckets / kN];
  }
  double chi2 = 0.0;
  for (int c : counts) {
    double diff = c - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 60.0);
}

TEST(Distributions, ZipfianIsSkewedAndSpreadByScrambling) {
  std::vector<uint64_t> draws =
      Draw(KeyDistributionKind::kZipfian, 19, kDraws, kN);
  std::map<uint64_t, int> counts;
  for (uint64_t d : draws) {
    ++counts[d];
  }
  std::vector<int> sorted;
  for (const auto& [key, count] : counts) {
    sorted.push_back(count);
  }
  std::sort(sorted.rbegin(), sorted.rend());

  // YCSB zipfian theta .99 puts a large share of mass on few keys: the top
  // 10 of 1000 keys should cover well over 15% of draws (theory ~ 30%),
  // where uniform would give them 1%.
  int top10 = 0;
  for (size_t i = 0; i < 10 && i < sorted.size(); ++i) {
    top10 += sorted[i];
  }
  EXPECT_GT(top10, kDraws * 15 / 100);

  // Scrambling spreads the hot ranks across the key space: the hottest key
  // should usually NOT be index 0 (unscrambled zipfian pins it there), and
  // hot keys must not all cluster in the lowest decile.
  uint64_t hottest = 0;
  int hottest_count = 0;
  int hot_in_low_decile = 0;
  std::vector<std::pair<int, uint64_t>> by_count;
  for (const auto& [key, count] : counts) {
    by_count.push_back({count, key});
    if (count > hottest_count) {
      hottest_count = count;
      hottest = key;
    }
  }
  std::sort(by_count.rbegin(), by_count.rend());
  for (size_t i = 0; i < 10 && i < by_count.size(); ++i) {
    if (by_count[i].second < kN / 10) {
      ++hot_in_low_decile;
    }
  }
  EXPECT_LT(hot_in_low_decile, 10);
  (void)hottest;
}

TEST(Distributions, HotspotRespectsItsFractions) {
  std::vector<uint64_t> draws =
      Draw(KeyDistributionKind::kHotspot, 23, kDraws, kN);
  // Defaults: 80% of ops inside the first 20% of the key space.
  uint64_t hot_n = kN / 5;
  int hot = 0;
  for (uint64_t d : draws) {
    if (d < hot_n) {
      ++hot;
    }
  }
  // 80% target (plus the uniform 20% that lands there by chance: expected
  // 0.8 + 0.2*0.2 = 84%). Accept a wide [78%, 90%] band.
  EXPECT_GT(hot, kDraws * 78 / 100);
  EXPECT_LT(hot, kDraws * 90 / 100);
}

TEST(Distributions, LatestFavorsTheNewestKeys) {
  std::vector<uint64_t> draws =
      Draw(KeyDistributionKind::kLatest, 29, kDraws, kN);
  // Workload D semantics: the most recently inserted (highest) indexes are
  // the hottest. The top decile of the key space should absorb most draws.
  int newest_decile = 0;
  for (uint64_t d : draws) {
    if (d >= kN - kN / 10) {
      ++newest_decile;
    }
  }
  EXPECT_GT(newest_decile, kDraws / 2);
}

TEST(Distributions, ZipfianGrowExtendsTheHarmonicSum) {
  ZipfianGenerator zipf(100);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Next(rng), 100u);
  }
  zipf.Grow(1000);
  EXPECT_EQ(zipf.n(), 1000u);
  bool saw_past_old_n = false;
  for (int i = 0; i < 20000; ++i) {
    uint64_t rank = zipf.Next(rng);
    EXPECT_LT(rank, 1000u);
    saw_past_old_n = saw_past_old_n || rank >= 100;
  }
  EXPECT_TRUE(saw_past_old_n);
  zipf.Grow(10);  // shrinking is a no-op
  EXPECT_EQ(zipf.n(), 1000u);
}

TEST(Distributions, ValueSizesStayInRange) {
  Rng rng(37);
  ValueSizeDistribution vsize(64, 512);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 20000; ++i) {
    uint64_t size = vsize.Next(rng);
    EXPECT_GE(size, 64u);
    EXPECT_LE(size, 512u);
    saw_low = saw_low || size < 128;
    saw_high = saw_high || size > 448;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
  ValueSizeDistribution fixed(100, 100);
  EXPECT_EQ(fixed.Next(rng), 100u);
}

}  // namespace
}  // namespace tdb::workload
