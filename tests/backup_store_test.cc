// Tests for the backup store: full and incremental backup creation,
// restores onto the same and fresh stores, chain enforcement, set
// completeness, tamper detection on archived bytes, and approval hooks.

#include <gtest/gtest.h>

#include "src/backup/backup_store.h"
#include "src/chunk/chunk_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/archival_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

CryptoParams TestParams(uint8_t fill = 0x33) {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, fill)};
}

class BackupTest : public ::testing::Test {
 protected:
  BackupTest()
      : store_({.segment_size = 8192, .num_segments = 512}),
        secret_(Bytes(32, 0xA5)) {
    options_.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(&store_, Trusted(), options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
    backup_ = std::make_unique<BackupStore>(chunks_.get());
  }

  TrustedServices Trusted() {
    return TrustedServices{&secret_, nullptr, &counter_};
  }

  PartitionId MakePartition(uint8_t fill = 0x33) {
    auto pid = chunks_->AllocatePartition();
    EXPECT_TRUE(pid.ok());
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, TestParams(fill));
    EXPECT_TRUE(chunks_->Commit(std::move(batch)).ok());
    return *pid;
  }

  ChunkId WriteNew(PartitionId p, const std::string& data) {
    auto id = chunks_->AllocateChunk(p);
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(chunks_->WriteChunk(*id, BytesFromString(data)).ok());
    return *id;
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions options_;
  std::unique_ptr<ChunkStore> chunks_;
  std::unique_ptr<BackupStore> backup_;
  MemArchive archive_;
};

TEST_F(BackupTest, FullBackupAndRestoreToSameStore) {
  PartitionId p = MakePartition();
  ChunkId a = WriteNew(p, "alpha");
  ChunkId b = WriteNew(p, "beta");

  auto sink = archive_.OpenSink("full");
  auto created = backup_->CreateBackupSet({{p, 0}}, /*set_id=*/42,
                                          /*created_unix=*/1000, sink.get());
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(sink->Close().ok());
  EXPECT_EQ(created->chunks_written, 2u);

  // Wreck the partition, then restore. Note: the extra chunk is written
  // before b is deallocated so it gets a fresh rank rather than reusing b's.
  ASSERT_TRUE(chunks_->WriteChunk(a, BytesFromString("corrupted")).ok());
  ChunkId extra = WriteNew(p, "extra chunk not in backup");
  ASSERT_TRUE(chunks_->DeallocateChunk(b).ok());

  auto source = archive_.OpenSource("full");
  ASSERT_TRUE(source.ok());
  auto restored = backup_->RestoreStream(source->get());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->restored, std::vector<PartitionId>{p});

  EXPECT_EQ(*chunks_->Read(a), BytesFromString("alpha"));
  EXPECT_EQ(*chunks_->Read(b), BytesFromString("beta"));
  // The extra chunk was not in the full backup: it must be gone.
  EXPECT_EQ(chunks_->Read(extra).status().code(), StatusCode::kNotFound);
}

TEST_F(BackupTest, RestoreOntoFreshStore) {
  PartitionId p = MakePartition();
  ChunkId a = WriteNew(p, "carried across stores");
  auto sink = archive_.OpenSink("x");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 7, 0, sink.get()).ok());
  ASSERT_TRUE(sink->Close().ok());

  // A different machine: fresh untrusted store, same platform secret.
  MemUntrustedStore store2({.segment_size = 8192, .num_segments = 512});
  MemMonotonicCounter counter2;
  auto cs2 = ChunkStore::Create(
      &store2, TrustedServices{&secret_, nullptr, &counter2}, options_);
  ASSERT_TRUE(cs2.ok());
  BackupStore backup2(cs2->get());
  auto source = archive_.OpenSource("x");
  auto restored = backup2.RestoreStream(source->get());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*(*cs2)->Read(a), BytesFromString("carried across stores"));
}

TEST_F(BackupTest, IncrementalBackupCarriesOnlyChanges) {
  PartitionId p = MakePartition();
  std::vector<ChunkId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(WriteNew(p, "base" + std::to_string(i)));
  }
  auto sink_full = archive_.OpenSink("full");
  auto full = backup_->CreateBackupSet({{p, 0}}, 1, 0, sink_full.get());
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sink_full->Close().ok());

  // Change little, then take an incremental backup against the snapshot.
  ASSERT_TRUE(chunks_->WriteChunk(ids[2], BytesFromString("changed")).ok());
  ASSERT_TRUE(chunks_->DeallocateChunk(ids[5]).ok());
  auto sink_inc = archive_.OpenSink("inc");
  auto inc = backup_->CreateBackupSet({{p, full->snapshots[0]}}, 2, 1, sink_inc.get());
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(sink_inc->Close().ok());
  EXPECT_EQ(inc->chunks_written, 2u);  // one update + one deallocation
  EXPECT_LT(archive_.StreamSize("inc"), archive_.StreamSize("full"));

  // Restore the chain onto a fresh store.
  MemUntrustedStore store2({.segment_size = 8192, .num_segments = 512});
  MemMonotonicCounter counter2;
  auto cs2 = ChunkStore::Create(
      &store2, TrustedServices{&secret_, nullptr, &counter2}, options_);
  ASSERT_TRUE(cs2.ok());
  BackupStore backup2(cs2->get());
  // Concatenate full + incremental into one stream.
  auto sink_chain = archive_.OpenSink("chain");
  auto src_f = archive_.OpenSource("full");
  auto src_i = archive_.OpenSource("inc");
  ASSERT_TRUE(sink_chain->Write(*(*src_f)->Read(1 << 24)).ok());
  ASSERT_TRUE(sink_chain->Write(*(*src_i)->Read(1 << 24)).ok());
  ASSERT_TRUE(sink_chain->Close().ok());

  auto source = archive_.OpenSource("chain");
  auto restored = backup2.RestoreStream(source->get());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*(*cs2)->Read(ids[2]), BytesFromString("changed"));
  EXPECT_EQ((*cs2)->Read(ids[5]).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*(*cs2)->Read(ids[0]), BytesFromString("base0"));
}

TEST_F(BackupTest, BrokenIncrementalChainRejected) {
  PartitionId p = MakePartition();
  WriteNew(p, "v1");
  auto sink_full = archive_.OpenSink("full");
  auto full = backup_->CreateBackupSet({{p, 0}}, 1, 0, sink_full.get());
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sink_full->Close().ok());

  WriteNew(p, "v2");
  auto sink_inc1 = archive_.OpenSink("inc1");
  auto inc1 = backup_->CreateBackupSet({{p, full->snapshots[0]}}, 2, 1,
                                       sink_inc1.get());
  ASSERT_TRUE(inc1.ok());
  ASSERT_TRUE(sink_inc1->Close().ok());

  WriteNew(p, "v3");
  auto sink_inc2 = archive_.OpenSink("inc2");
  auto inc2 = backup_->CreateBackupSet({{p, inc1->snapshots[0]}}, 3, 2,
                                       sink_inc2.get());
  ASSERT_TRUE(inc2.ok());
  ASSERT_TRUE(sink_inc2->Close().ok());

  // full + inc2 (skipping inc1): the chain has a missing link.
  auto sink_chain = archive_.OpenSink("bad_chain");
  auto src_f = archive_.OpenSource("full");
  auto src_2 = archive_.OpenSource("inc2");
  ASSERT_TRUE(sink_chain->Write(*(*src_f)->Read(1 << 24)).ok());
  ASSERT_TRUE(sink_chain->Write(*(*src_2)->Read(1 << 24)).ok());
  ASSERT_TRUE(sink_chain->Close().ok());

  MemUntrustedStore store2({.segment_size = 8192, .num_segments = 512});
  MemMonotonicCounter counter2;
  auto cs2 = ChunkStore::Create(
      &store2, TrustedServices{&secret_, nullptr, &counter2}, options_);
  BackupStore backup2(cs2->get());
  auto source = archive_.OpenSource("bad_chain");
  auto restored = backup2.RestoreStream(source->get());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BackupTest, MultiPartitionSetIsConsistentAndComplete) {
  PartitionId p1 = MakePartition(0x31);
  PartitionId p2 = MakePartition(0x32);
  ChunkId a = WriteNew(p1, "one");
  ChunkId b = WriteNew(p2, "two");
  auto sink = archive_.OpenSink("set");
  auto created = backup_->CreateBackupSet({{p1, 0}, {p2, 0}}, 9, 0, sink.get());
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(sink->Close().ok());

  MemUntrustedStore store2({.segment_size = 8192, .num_segments = 512});
  MemMonotonicCounter counter2;
  auto cs2 = ChunkStore::Create(
      &store2, TrustedServices{&secret_, nullptr, &counter2}, options_);
  BackupStore backup2(cs2->get());
  auto source = archive_.OpenSource("set");
  auto restored = backup2.RestoreStream(source->get());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->restored.size(), 2u);
  EXPECT_EQ(*(*cs2)->Read(a), BytesFromString("one"));
  EXPECT_EQ(*(*cs2)->Read(b), BytesFromString("two"));
}

TEST_F(BackupTest, PartialBackupSetRejected) {
  PartitionId p1 = MakePartition(0x31);
  PartitionId p2 = MakePartition(0x32);
  WriteNew(p1, "one");
  WriteNew(p2, "two");
  auto sink = archive_.OpenSink("set");
  ASSERT_TRUE(backup_->CreateBackupSet({{p1, 0}, {p2, 0}}, 9, 0, sink.get()).ok());
  ASSERT_TRUE(sink->Close().ok());

  // Truncate the stream to cut off the second partition backup: find the
  // size of a single-partition backup by making one and measuring.
  auto sink_single = archive_.OpenSink("single");
  ASSERT_TRUE(backup_->CreateBackupSet({{p1, 0}}, 10, 0, sink_single.get()).ok());
  ASSERT_TRUE(sink_single->Close().ok());
  size_t single_size = archive_.StreamSize("single");

  auto src = archive_.OpenSource("set");
  Bytes full_stream = *(*src)->Read(1 << 24);
  auto sink_cut = archive_.OpenSink("cut");
  ASSERT_TRUE(
      sink_cut->Write(ByteView(full_stream.data(), single_size)).ok());
  ASSERT_TRUE(sink_cut->Close().ok());

  MemUntrustedStore store2({.segment_size = 8192, .num_segments = 512});
  MemMonotonicCounter counter2;
  auto cs2 = ChunkStore::Create(
      &store2, TrustedServices{&secret_, nullptr, &counter2}, options_);
  BackupStore backup2(cs2->get());
  auto source = archive_.OpenSource("cut");
  auto restored = backup2.RestoreStream(source->get());
  EXPECT_FALSE(restored.ok());
}

TEST_F(BackupTest, TamperedArchiveDetected) {
  PartitionId p = MakePartition();
  WriteNew(p, "sensitive payload that matters");
  auto sink = archive_.OpenSink("b");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 4, 0, sink.get()).ok());
  ASSERT_TRUE(sink->Close().ok());
  // Flip a byte in the middle of the archived stream.
  ASSERT_TRUE(archive_.Corrupt("b", archive_.StreamSize("b") / 2, 0x01).ok());

  MemUntrustedStore store2({.segment_size = 8192, .num_segments = 512});
  MemMonotonicCounter counter2;
  auto cs2 = ChunkStore::Create(
      &store2, TrustedServices{&secret_, nullptr, &counter2}, options_);
  BackupStore backup2(cs2->get());
  auto source = archive_.OpenSource("b");
  auto restored = backup2.RestoreStream(source->get());
  EXPECT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().code() == StatusCode::kTamperDetected ||
              restored.status().code() == StatusCode::kCorruption)
      << restored.status();
}

TEST_F(BackupTest, ApproverCanDenyRestore) {
  PartitionId p = MakePartition();
  WriteNew(p, "x");
  auto sink = archive_.OpenSink("b");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 4, /*created_unix=*/50,
                                       sink.get()).ok());
  ASSERT_TRUE(sink->Close().ok());
  auto source = archive_.OpenSource("b");
  // A trusted program refusing old backups (§6.3).
  auto restored = backup_->RestoreStream(
      source->get(), [](const BackupDescriptor& d) -> Status {
        if (d.created_unix < 100) {
          return FailedPreconditionError("backup too old; restore denied");
        }
        return OkStatus();
      });
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

// Rollback attack on the archive: the adversary presents an authentic but
// stale backup stream. The stream itself validates (it is genuine), so
// freshness must come from the trusted approver (§6.3) — and a denied
// restore must not leave any stale state behind.
TEST_F(BackupTest, RolledBackArchiveRejectedAndStateUntouched) {
  PartitionId p = MakePartition();
  ChunkId a = WriteNew(p, "v1 secret");
  auto sink_old = archive_.OpenSink("old");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 1, /*created_unix=*/100,
                                       sink_old.get()).ok());
  ASSERT_TRUE(sink_old->Close().ok());

  ASSERT_TRUE(chunks_->WriteChunk(a, BytesFromString("v2 secret")).ok());
  auto sink_new = archive_.OpenSink("new");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 2, /*created_unix=*/200,
                                       sink_new.get()).ok());
  ASSERT_TRUE(sink_new->Close().ok());

  // The trusted program knows the latest backup time and refuses anything
  // older: replaying the old archive is a rollback attempt.
  auto source = archive_.OpenSource("old");
  auto restored = backup_->RestoreStream(
      source->get(), [](const BackupDescriptor& d) -> Status {
        if (d.created_unix < 200) {
          return TamperDetectedError("stale backup stream: rollback denied");
        }
        return OkStatus();
      });
  EXPECT_EQ(restored.status().code(), StatusCode::kTamperDetected)
      << restored.status();
  // The stale state must not have been restored.
  EXPECT_EQ(*chunks_->Read(a), BytesFromString("v2 secret"));
}

// Splicing an authentic descriptor from one backup onto authentic chunks
// from another: every frame is genuine, but the signature binds descriptor
// and chunk contents together, so the splice is detected as tampering.
TEST_F(BackupTest, SplicedDescriptorAndChunksDetected) {
  PartitionId p = MakePartition();
  ChunkId a = WriteNew(p, "original state");
  auto sink1 = archive_.OpenSink("b1");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 1, 100, sink1.get()).ok());
  ASSERT_TRUE(sink1->Close().ok());

  ASSERT_TRUE(chunks_->WriteChunk(a, BytesFromString("newer state")).ok());
  auto sink2 = archive_.OpenSink("b2");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 2, 200, sink2.get()).ok());
  ASSERT_TRUE(sink2->Close().ok());

  // Frames carry a u32 length prefix; the descriptor is the first frame.
  // Graft b2's descriptor onto b1's chunks/signature/checksum.
  Bytes s1 = *(*archive_.OpenSource("b1"))->Read(1 << 24);
  Bytes s2 = *(*archive_.OpenSource("b2"))->Read(1 << 24);
  size_t desc1_end = 4 + GetU32(s1.data());
  size_t desc2_end = 4 + GetU32(s2.data());
  Bytes spliced(s2.begin(), s2.begin() + desc2_end);
  spliced.insert(spliced.end(), s1.begin() + desc1_end, s1.end());

  auto sink = archive_.OpenSink("spliced");
  ASSERT_TRUE(sink->Write(spliced).ok());
  ASSERT_TRUE(sink->Close().ok());

  auto source = archive_.OpenSource("spliced");
  auto restored = backup_->RestoreStream(source->get());
  EXPECT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().code() == StatusCode::kTamperDetected ||
              restored.status().code() == StatusCode::kCorruption)
      << restored.status();
  // The spliced stream must not have changed any state.
  EXPECT_EQ(*chunks_->Read(a), BytesFromString("newer state"));
}

// A stream cut off in the middle of a frame is structural damage, not a key
// failure: it must come back as corruption and restore nothing.
TEST_F(BackupTest, MidFrameTruncationIsCorruption) {
  PartitionId p = MakePartition();
  ChunkId a = WriteNew(p, "payload");
  auto sink = archive_.OpenSink("b");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 4, 0, sink.get()).ok());
  ASSERT_TRUE(sink->Close().ok());

  Bytes stream = *(*archive_.OpenSource("b"))->Read(1 << 24);
  ASSERT_GT(stream.size(), 3u);
  stream.resize(stream.size() - 3);  // cut inside the final frame
  auto sink_cut = archive_.OpenSink("cut");
  ASSERT_TRUE(sink_cut->Write(stream).ok());
  ASSERT_TRUE(sink_cut->Close().ok());

  ASSERT_TRUE(chunks_->WriteChunk(a, BytesFromString("current")).ok());
  auto source = archive_.OpenSource("cut");
  auto restored = backup_->RestoreStream(source->get());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption)
      << restored.status();
  EXPECT_EQ(*chunks_->Read(a), BytesFromString("current"));
}

TEST_F(BackupTest, RestoredStateSurvivesRestart) {
  PartitionId p = MakePartition();
  ChunkId a = WriteNew(p, "will be restored");
  auto sink = archive_.OpenSink("b");
  ASSERT_TRUE(backup_->CreateBackupSet({{p, 0}}, 4, 0, sink.get()).ok());
  ASSERT_TRUE(sink->Close().ok());
  ASSERT_TRUE(chunks_->WriteChunk(a, BytesFromString("overwritten")).ok());
  auto source = archive_.OpenSource("b");
  ASSERT_TRUE(backup_->RestoreStream(source->get()).ok());
  chunks_.reset();
  auto reopened = ChunkStore::Open(&store_, Trusted(), options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(*(*reopened)->Read(a), BytesFromString("will be restored"));
}

}  // namespace
}  // namespace tdb
