// Unit tests for the storage substrates: untrusted store (memory and file),
// crash semantics, fault injection, trusted stores, and archival streams.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/rng.h"
#include "src/platform/trusted_store.h"
#include "src/store/archival_store.h"
#include "src/store/faulty_store.h"
#include "src/store/tamper_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(MemUntrustedStoreTest, WriteReadRoundTrip) {
  MemUntrustedStore store({.segment_size = 1024, .num_segments = 4});
  Bytes data = BytesFromString("hello");
  ASSERT_TRUE(store.Write(1, 100, data).ok());
  auto back = store.Read(1, 100, 5);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(MemUntrustedStoreTest, BoundsChecked) {
  MemUntrustedStore store({.segment_size = 128, .num_segments = 2});
  EXPECT_FALSE(store.Write(2, 0, BytesFromString("x")).ok());
  EXPECT_FALSE(store.Write(0, 127, BytesFromString("xy")).ok());
  EXPECT_FALSE(store.Read(0, 120, 9).ok());
  EXPECT_TRUE(store.Write(0, 127, BytesFromString("x")).ok());
}

TEST(MemUntrustedStoreTest, CrashDiscardsUnflushedWrites) {
  MemUntrustedStore store({.segment_size = 128, .num_segments = 2});
  ASSERT_TRUE(store.Write(0, 0, BytesFromString("durable")).ok());
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.Write(0, 0, BytesFromString("gone!!!")).ok());
  // Before the crash, the store sees its own writes.
  EXPECT_EQ(*store.Read(0, 0, 7), BytesFromString("gone!!!"));
  store.Crash();
  EXPECT_EQ(*store.Read(0, 0, 7), BytesFromString("durable"));
}

TEST(MemUntrustedStoreTest, CorruptionPrimitives) {
  MemUntrustedStore store({.segment_size = 128, .num_segments = 2});
  ASSERT_TRUE(store.Write(0, 10, BytesFromString("abc")).ok());
  ASSERT_TRUE(store.Flush().ok());
  store.CorruptByte(0, 10, 0xff);
  EXPECT_EQ((*store.Read(0, 10, 1))[0], 'a' ^ 0xff);
  Bytes snapshot = store.DumpSegment(0);
  ASSERT_TRUE(store.Write(0, 10, BytesFromString("xyz")).ok());
  store.RestoreSegment(0, snapshot);
  EXPECT_EQ((*store.Read(0, 11, 2)), BytesFromString("bc"));
}

TEST(MemUntrustedStoreTest, SuperblockRoundTrip) {
  MemUntrustedStore store({.segment_size = 128, .num_segments = 2});
  EXPECT_TRUE(store.ReadSuperblock()->empty());
  ASSERT_TRUE(store.WriteSuperblock(BytesFromString("sb")).ok());
  EXPECT_EQ(*store.ReadSuperblock(), BytesFromString("sb"));
}

TEST(FileUntrustedStoreTest, PersistsAcrossReopen) {
  std::string path = TempPath("tdb_store_test.bin");
  std::remove(path.c_str());
  {
    auto store =
        FileUntrustedStore::Open(path, {.segment_size = 512, .num_segments = 4});
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Write(2, 7, BytesFromString("persisted")).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->WriteSuperblock(BytesFromString("super")).ok());
  }
  {
    auto store =
        FileUntrustedStore::Open(path, {.segment_size = 512, .num_segments = 4});
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(*(*store)->Read(2, 7, 9), BytesFromString("persisted"));
    EXPECT_EQ(*(*store)->ReadSuperblock(), BytesFromString("super"));
  }
  std::remove(path.c_str());
}

TEST(FileUntrustedStoreTest, SuperblockSurvivesTornWrite) {
  // WriteSuperblock alternates between two checksummed slots; a torn write
  // (here: garbage over the slot being written) must leave the previous
  // superblock readable — the old single-slot format turned a torn write
  // into a permanently unreadable store.
  std::string path = TempPath("tdb_store_torn_sb.bin");
  std::remove(path.c_str());
  UntrustedStoreOptions opts{.segment_size = 512, .num_segments = 4};
  {
    auto store = FileUntrustedStore::Open(path, opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteSuperblock(BytesFromString("v1")).ok());
    ASSERT_TRUE((*store)->WriteSuperblock(BytesFromString("v2")).ok());
  }
  // v1 went to slot 1 (seq 1), v2 to slot 0 (seq 2). Tear every prefix
  // length of slot 0 by zeroing its tail; the reader must fall back to v1.
  for (size_t keep = 0; keep < 64; ++keep) {
    Bytes dump;
    {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      ASSERT_NE(f, nullptr);
      dump.resize(FileUntrustedStore::kSuperblockSlotSize);
      ASSERT_EQ(std::fread(dump.data(), 1, dump.size(), f), dump.size());
      std::fclose(f);
    }
    Bytes torn = dump;
    for (size_t i = keep; i < torn.size(); ++i) {
      torn[i] = 0;
    }
    std::string torn_path = TempPath("tdb_store_torn_sb_case.bin");
    ASSERT_TRUE(std::filesystem::copy_file(
        path, torn_path, std::filesystem::copy_options::overwrite_existing));
    {
      std::FILE* f = std::fopen(torn_path.c_str(), "rb+");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fwrite(torn.data(), 1, torn.size(), f), torn.size());
      std::fclose(f);
    }
    auto store = FileUntrustedStore::Open(torn_path, opts);
    ASSERT_TRUE(store.ok());
    auto sb = (*store)->ReadSuperblock();
    ASSERT_TRUE(sb.ok()) << "keep=" << keep;
    // v2's record is header + payload + checksum bytes long; a tear inside
    // it must fall back to v1, a tear past it leaves v2 intact.
    size_t record = FileUntrustedStore::kSuperblockSlotHeader + 2 +
                    FileUntrustedStore::kSuperblockSlotChecksum;
    if (keep < record) {
      EXPECT_EQ(*sb, BytesFromString("v1")) << "keep=" << keep;
    } else {
      EXPECT_EQ(*sb, BytesFromString("v2")) << "keep=" << keep;
    }
    // And the store must accept the next superblock write.
    ASSERT_TRUE((*store)->WriteSuperblock(BytesFromString("v3")).ok());
    EXPECT_EQ(*(*store)->ReadSuperblock(), BytesFromString("v3"));
    std::remove(torn_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(FileUntrustedStoreTest, FreshSuperblockReadsEmpty) {
  std::string path = TempPath("tdb_store_fresh_sb.bin");
  std::remove(path.c_str());
  auto store = FileUntrustedStore::Open(
      path, {.segment_size = 512, .num_segments = 4});
  ASSERT_TRUE(store.ok());
  auto sb = (*store)->ReadSuperblock();
  ASSERT_TRUE(sb.ok());
  EXPECT_TRUE(sb->empty());
  std::remove(path.c_str());
}

TEST(FaultyStoreTest, FailsAfterCountdown) {
  MemUntrustedStore base({.segment_size = 128, .num_segments = 2});
  FaultyStore store(&base);
  store.FailAfterWrites(2);
  EXPECT_TRUE(store.Write(0, 0, BytesFromString("a")).ok());
  EXPECT_TRUE(store.Write(0, 1, BytesFromString("b")).ok());
  EXPECT_EQ(store.Write(0, 2, BytesFromString("c")).code(),
            StatusCode::kIoError);
  EXPECT_EQ(store.Flush().code(), StatusCode::kIoError);
  store.ClearFault();
  EXPECT_TRUE(store.Write(0, 2, BytesFromString("c")).ok());
}

TEST(FaultyStoreTest, TornWritePersistsPrefix) {
  MemUntrustedStore base({.segment_size = 128, .num_segments = 2});
  FaultyStore store(&base);
  store.SetTearFraction(0.5);
  store.FailAfterWrites(0);
  EXPECT_FALSE(store.Write(0, 0, BytesFromString("abcdef")).ok());
  // The first half landed in the base store.
  EXPECT_EQ(*base.Read(0, 0, 3), BytesFromString("abc"));
  EXPECT_EQ(*base.Read(0, 3, 3), Bytes(3, 0));
}

TEST(FaultyStoreTest, TearFractionControlsPersistedPrefix) {
  MemUntrustedStore base({.segment_size = 128, .num_segments = 2});
  FaultyStore store(&base);
  // A quarter of an 8-byte write: 2 bytes survive.
  store.SetTearFraction(0.25);
  store.FailAfterWrites(0);
  EXPECT_FALSE(store.Write(0, 0, BytesFromString("abcdefgh")).ok());
  EXPECT_EQ(*base.Read(0, 0, 2), BytesFromString("ab"));
  EXPECT_EQ(*base.Read(0, 2, 6), Bytes(6, 0));

  // Fraction 1.0: the device persisted everything but the ack was lost.
  store.ClearFault();
  store.SetTearFraction(1.0);
  store.FailAfterWrites(0);
  EXPECT_FALSE(store.Write(0, 16, BytesFromString("whole")).ok());
  EXPECT_EQ(*base.Read(0, 16, 5), BytesFromString("whole"));

  // Fraction 0: a clean failure, nothing persisted.
  store.ClearFault();
  store.SetTearFraction(0.0);
  store.FailAfterWrites(0);
  EXPECT_FALSE(store.Write(0, 32, BytesFromString("none")).ok());
  EXPECT_EQ(*base.Read(0, 32, 4), Bytes(4, 0));
}

TEST(FaultyStoreTest, FailsReadsAfterCountdown) {
  MemUntrustedStore base({.segment_size = 128, .num_segments = 2});
  ASSERT_TRUE(base.Write(0, 0, BytesFromString("abc")).ok());
  ASSERT_TRUE(base.Flush().ok());
  FaultyStore store(&base);
  store.FailAfterReads(2);
  EXPECT_TRUE(store.Read(0, 0, 3).ok());
  EXPECT_TRUE(store.Read(0, 1, 1).ok());
  EXPECT_EQ(store.Read(0, 0, 3).status().code(), StatusCode::kIoError);
  // Reads keep failing until the fault is cleared; writes are unaffected.
  EXPECT_EQ(store.ReadSuperblock().status().code(), StatusCode::kIoError);
  EXPECT_TRUE(store.Write(0, 8, BytesFromString("w")).ok());
  EXPECT_TRUE(store.faulted());
  store.ClearFault();
  EXPECT_EQ(*store.Read(0, 0, 3), BytesFromString("abc"));
  EXPECT_EQ(store.read_count(), 3u);
}

TEST(FaultyStoreTest, ReadFaultCoversSuperblock) {
  MemUntrustedStore base({.segment_size = 128, .num_segments = 2});
  ASSERT_TRUE(base.WriteSuperblock(BytesFromString("sb")).ok());
  FaultyStore store(&base);
  store.FailAfterReads(0);
  EXPECT_EQ(store.ReadSuperblock().status().code(), StatusCode::kIoError);
  store.ClearFault();
  EXPECT_EQ(*store.ReadSuperblock(), BytesFromString("sb"));
}

TEST(TamperStoreTest, FlipBitsAndOverwrite) {
  MemUntrustedStore base({.segment_size = 128, .num_segments = 4});
  ASSERT_TRUE(base.Write(1, 10, BytesFromString("abcdef")).ok());
  ASSERT_TRUE(base.Flush().ok());
  TamperStore tamper(&base);
  ASSERT_TRUE(tamper.FlipBits(1, 10, 0x01).ok());
  EXPECT_EQ((*base.Read(1, 10, 1))[0], 'a' ^ 0x01);
  EXPECT_FALSE(tamper.FlipBits(1, 10, 0x00).ok());  // must flip something

  Rng rng(7);
  ASSERT_TRUE(tamper.OverwriteRandom(1, 10, 6, rng).ok());
  EXPECT_NE(*base.Read(1, 10, 6), BytesFromString("abcdef"));
  ASSERT_TRUE(tamper.Overwrite(1, 10, BytesFromString("zz")).ok());
  EXPECT_EQ(*base.Read(1, 10, 2), BytesFromString("zz"));
  EXPECT_EQ(tamper.tamper_count(), 3u);
}

TEST(TamperStoreTest, CaptureAndReplaySegment) {
  MemUntrustedStore base({.segment_size = 128, .num_segments = 4});
  ASSERT_TRUE(base.Write(0, 0, BytesFromString("old state")).ok());
  ASSERT_TRUE(base.Flush().ok());
  TamperStore tamper(&base);
  auto captured = tamper.CaptureSegment(0);
  ASSERT_TRUE(captured.ok());
  ASSERT_TRUE(base.Write(0, 0, BytesFromString("new state")).ok());
  ASSERT_TRUE(base.Flush().ok());
  ASSERT_TRUE(tamper.ReplaySegment(0, *captured).ok());
  EXPECT_EQ(*base.Read(0, 0, 9), BytesFromString("old state"));
  // Replay is durable: it survives a device crash.
  base.Crash();
  EXPECT_EQ(*base.Read(0, 0, 9), BytesFromString("old state"));
}

TEST(TamperStoreTest, SwapTruncateGrow) {
  MemUntrustedStore base({.segment_size = 64, .num_segments = 4});
  ASSERT_TRUE(base.Write(0, 0, BytesFromString("seg-zero")).ok());
  ASSERT_TRUE(base.Write(1, 0, BytesFromString("seg-one!")).ok());
  ASSERT_TRUE(base.Flush().ok());
  TamperStore tamper(&base);
  ASSERT_TRUE(tamper.SwapSegments(0, 1).ok());
  EXPECT_EQ(*base.Read(0, 0, 8), BytesFromString("seg-one!"));
  EXPECT_EQ(*base.Read(1, 0, 8), BytesFromString("seg-zero"));

  ASSERT_TRUE(tamper.TruncateSegment(0, 4).ok());
  EXPECT_EQ(*base.Read(0, 0, 4), BytesFromString("seg-"));
  EXPECT_EQ(*base.Read(0, 4, 60), Bytes(60, 0));

  Rng rng(11);
  ASSERT_TRUE(tamper.GrowSegment(1, 8, rng).ok());
  EXPECT_EQ(*base.Read(1, 0, 8), BytesFromString("seg-zero"));
  EXPECT_NE(*base.Read(1, 8, 56), Bytes(56, 0));
}

TEST(TamperStoreTest, FullStoreRollback) {
  MemUntrustedStore base({.segment_size = 64, .num_segments = 2});
  ASSERT_TRUE(base.Write(0, 0, BytesFromString("v1")).ok());
  ASSERT_TRUE(base.Flush().ok());
  ASSERT_TRUE(base.WriteSuperblock(BytesFromString("sb1")).ok());
  TamperStore tamper(&base);
  auto image = tamper.CaptureStore();
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(base.Write(0, 0, BytesFromString("v2")).ok());
  ASSERT_TRUE(base.Flush().ok());
  ASSERT_TRUE(base.WriteSuperblock(BytesFromString("sb2")).ok());
  ASSERT_TRUE(tamper.ReplayStore(*image).ok());
  EXPECT_EQ(*base.Read(0, 0, 2), BytesFromString("v1"));
  EXPECT_EQ(*base.ReadSuperblock(), BytesFromString("sb1"));
}

TEST(TrustedStoreTest, MemRegisterRoundTrip) {
  MemTamperResistantRegister reg;
  EXPECT_TRUE(reg.Read()->empty());
  ASSERT_TRUE(reg.Write(BytesFromString("state")).ok());
  EXPECT_EQ(*reg.Read(), BytesFromString("state"));
}

TEST(TrustedStoreTest, MemCounterIsMonotonic) {
  MemMonotonicCounter counter;
  EXPECT_EQ(*counter.Read(), 0u);
  ASSERT_TRUE(counter.AdvanceTo(5).ok());
  EXPECT_EQ(*counter.Read(), 5u);
  EXPECT_TRUE(counter.AdvanceTo(5).ok());  // no-op advance allowed
  EXPECT_FALSE(counter.AdvanceTo(4).ok());
  EXPECT_EQ(*counter.Read(), 5u);
}

TEST(TrustedStoreTest, FileRegisterSurvivesReopen) {
  std::string path = TempPath("tdb_reg_test");
  std::remove((path + ".slot0").c_str());
  std::remove((path + ".slot1").c_str());
  {
    auto reg = FileTamperResistantRegister::Open(path);
    ASSERT_TRUE(reg.ok());
    ASSERT_TRUE((*reg)->Write(BytesFromString("v1")).ok());
    ASSERT_TRUE((*reg)->Write(BytesFromString("v2")).ok());
  }
  {
    auto reg = FileTamperResistantRegister::Open(path);
    ASSERT_TRUE(reg.ok());
    EXPECT_EQ(*(*reg)->Read(), BytesFromString("v2"));
  }
  std::remove((path + ".slot0").c_str());
  std::remove((path + ".slot1").c_str());
}

TEST(TrustedStoreTest, FileRegisterSurvivesTornSlot) {
  std::string path = TempPath("tdb_reg_torn");
  std::remove((path + ".slot0").c_str());
  std::remove((path + ".slot1").c_str());
  {
    auto reg = FileTamperResistantRegister::Open(path);
    ASSERT_TRUE(reg.ok());
    ASSERT_TRUE((*reg)->Write(BytesFromString("v1")).ok());  // slot 1
    ASSERT_TRUE((*reg)->Write(BytesFromString("v2")).ok());  // slot 0
  }
  // Corrupt the newer slot; the older value must be recovered.
  {
    std::FILE* f = std::fopen((path + ".slot0").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  {
    auto reg = FileTamperResistantRegister::Open(path);
    ASSERT_TRUE(reg.ok());
    EXPECT_EQ(*(*reg)->Read(), BytesFromString("v1"));
  }
  std::remove((path + ".slot0").c_str());
  std::remove((path + ".slot1").c_str());
}

TEST(TrustedStoreTest, FileCounterMonotonicAcrossReopen) {
  std::string path = TempPath("tdb_ctr_test");
  std::remove((path + ".slot0").c_str());
  std::remove((path + ".slot1").c_str());
  {
    auto counter = FileMonotonicCounter::Open(path);
    ASSERT_TRUE(counter.ok());
    ASSERT_TRUE((*counter)->AdvanceTo(9).ok());
  }
  {
    auto counter = FileMonotonicCounter::Open(path);
    ASSERT_TRUE(counter.ok());
    EXPECT_EQ(*(*counter)->Read(), 9u);
    EXPECT_FALSE((*counter)->AdvanceTo(3).ok());
  }
  std::remove((path + ".slot0").c_str());
  std::remove((path + ".slot1").c_str());
}

TEST(ArchivalStoreTest, MemStreamRoundTrip) {
  MemArchive archive;
  {
    auto sink = archive.OpenSink("backup1");
    ASSERT_TRUE(sink->Write(BytesFromString("part1-")).ok());
    ASSERT_TRUE(sink->Write(BytesFromString("part2")).ok());
    ASSERT_TRUE(sink->Close().ok());
  }
  EXPECT_TRUE(archive.Contains("backup1"));
  EXPECT_FALSE(archive.Contains("backup2"));
  auto source = archive.OpenSource("backup1");
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(*(*source)->Read(6), BytesFromString("part1-"));
  EXPECT_EQ(*(*source)->Read(100), BytesFromString("part2"));
  EXPECT_TRUE((*source)->Read(10)->empty());
}

TEST(ArchivalStoreTest, CorruptFlipsByte) {
  MemArchive archive;
  auto sink = archive.OpenSink("s");
  ASSERT_TRUE(sink->Write(BytesFromString("abc")).ok());
  ASSERT_TRUE(sink->Close().ok());
  ASSERT_TRUE(archive.Corrupt("s", 1, 0x01).ok());
  auto source = archive.OpenSource("s");
  EXPECT_EQ((*(*source)->Read(3))[1], 'b' ^ 0x01);
}

TEST(ArchivalStoreTest, FileStreamRoundTrip) {
  std::string path = TempPath("tdb_archive_test.bak");
  std::remove(path.c_str());
  {
    auto sink = OpenFileSink(path);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE((*sink)->Write(BytesFromString("archived bytes")).ok());
    ASSERT_TRUE((*sink)->Close().ok());
  }
  auto source = OpenFileSource(path);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(*(*source)->Read(1000), BytesFromString("archived bytes"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdb
