// The unified observability layer (src/obs): metrics registry semantics
// (per-thread sharding, merged snapshots), trace-journal ring behavior,
// snapshot-JSON structure, and the disabled-path overhead contract — one
// relaxed atomic load per instrumentation site when observability is off.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/object/object_store.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"
#include "src/platform/trusted_store.h"
#include "src/server/blob.h"
#include "src/store/untrusted_store.h"

namespace tdb::obs {
namespace {

// The registry and journal are process singletons; every test starts from a
// known state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetAll();
    EnableAll();
    TraceJournal::Instance().SetCapacity(4096);
  }
  void TearDown() override {
    DisableAll();
    ResetAll();
  }
};

TEST_F(ObsTest, CountersMergeAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        Count("test.merged");
      }
      Count("test.bulk", 100);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  MetricsRegistry& m = MetricsRegistry::Instance();
  EXPECT_EQ(m.GetCounter("test.merged"),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(m.GetCounter("test.bulk"), static_cast<uint64_t>(kThreads) * 100);
  EXPECT_EQ(m.GetCounter("test.absent"), 0u);
  auto all = m.Counters();
  EXPECT_EQ(all.at("test.merged"),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, HistogramsMergeAcrossThreads) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // Thread t observes t*100 + {1, 2, 3}.
      for (int i = 1; i <= 3; ++i) {
        Observe("test.hist", t * 100.0 + i);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  bool found = false;
  for (const auto& h : MetricsRegistry::Instance().Histograms()) {
    if (h.name != "test.hist") continue;
    found = true;
    EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * 3);
    EXPECT_DOUBLE_EQ(h.min, 1.0);
    EXPECT_DOUBLE_EQ(h.max, (kThreads - 1) * 100.0 + 3);
    double expected_sum = 0;
    for (int t = 0; t < kThreads; ++t) {
      expected_sum += 3 * t * 100.0 + 6;
    }
    EXPECT_DOUBLE_EQ(h.sum, expected_sum);
    EXPECT_DOUBLE_EQ(h.mean(), expected_sum / (kThreads * 3));
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, GaugesAreLastWriterWins) {
  SetGauge("test.gauge", 1.0);
  SetGauge("test.gauge", 42.5);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Instance().Gauges().at("test.gauge"),
                   42.5);
}

TEST_F(ObsTest, DisabledSitesRecordNothing) {
  DisableAll();
  Count("test.off");
  Observe("test.off_hist", 1.0);
  SetGauge("test.off_gauge", 1.0);
  TraceEmit(TraceKind::kCommit, "test");
  {
    LatencyTimer timer("test.off_latency");
  }
  EXPECT_EQ(MetricsRegistry::Instance().GetCounter("test.off"), 0u);
  EXPECT_TRUE(MetricsRegistry::Instance().Gauges().empty());
  EXPECT_TRUE(MetricsRegistry::Instance().Histograms().empty());
  EXPECT_EQ(TraceJournal::Instance().TotalEmitted(), 0u);
}

TEST_F(ObsTest, ResetClearsEverything) {
  Count("test.c");
  SetGauge("test.g", 1.0);
  Observe("test.h", 1.0);
  TraceEmit(TraceKind::kCommit, "test");
  ResetAll();
  EXPECT_EQ(MetricsRegistry::Instance().GetCounter("test.c"), 0u);
  EXPECT_TRUE(MetricsRegistry::Instance().Gauges().empty());
  EXPECT_TRUE(MetricsRegistry::Instance().Histograms().empty());
  EXPECT_EQ(TraceJournal::Instance().TotalEmitted(), 0u);
  EXPECT_TRUE(TraceJournal::Instance().Snapshot().empty());
}

TEST_F(ObsTest, LatencyTimerObservesWhenEnabled) {
  {
    LatencyTimer timer("test.latency_us");
  }
  auto hists = MetricsRegistry::Instance().Histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].name, "test.latency_us");
  EXPECT_EQ(hists[0].count, 1u);
  EXPECT_GE(hists[0].sum, 0.0);
}

TEST_F(ObsTest, TraceRingWrapKeepsExactCountsAndNewestEvents) {
  TraceJournal& j = TraceJournal::Instance();
  j.SetCapacity(8);
  EXPECT_EQ(j.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    TraceEmit(TraceKind::kCacheHit, "test", i);
  }
  TraceEmit(TraceKind::kCommit, "test", 99);

  // Totals are exact even though the ring only holds the last 8 events.
  EXPECT_EQ(j.CountOf(TraceKind::kCacheHit), 20u);
  EXPECT_EQ(j.CountOf(TraceKind::kCommit), 1u);
  EXPECT_EQ(j.TotalEmitted(), 21u);

  std::vector<TraceEvent> events = j.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, contiguous sequence numbers ending at the newest event.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);
  }
  EXPECT_EQ(events.back().kind, TraceKind::kCommit);
  EXPECT_EQ(events.back().a, 99u);
}

TEST_F(ObsTest, TraceEventsCarryOperandsAndDetail) {
  TraceEmit(TraceKind::kTamperDetected, "tamper", 3, 7, "leader hash mismatch");
  std::vector<TraceEvent> events = TraceJournal::Instance().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kTamperDetected);
  EXPECT_STREQ(events[0].module, "tamper");
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[0].b, 7u);
  EXPECT_EQ(events[0].detail, "leader hash mismatch");
  EXPECT_STREQ(TraceKindName(events[0].kind), "tamper_detected");
}

// The hand-off trace kinds and the per-partition gauges are the sharded
// service's dashboard schema: tdb_stats keys off these exact names, so they
// must resolve and survive a SnapshotJson round trip.
TEST_F(ObsTest, PartitionHandoffSchemaAppearsInSnapshotJson) {
  EXPECT_STREQ(TraceKindName(TraceKind::kPartitionHandoffBegin),
               "partition_handoff_begin");
  EXPECT_STREQ(TraceKindName(TraceKind::kPartitionHandoffCutover),
               "partition_handoff_cutover");
  EXPECT_STREQ(TraceKindName(TraceKind::kPartitionHandoffComplete),
               "partition_handoff_complete");

  TraceEmit(TraceKind::kPartitionHandoffBegin, "shard", 2, 5);
  TraceEmit(TraceKind::kPartitionHandoffCutover, "shard", 2, 6, "node-b");
  TraceEmit(TraceKind::kPartitionHandoffComplete, "shard", 2, 0, "node-b");
  // The gauge names the server publishes per served partition.
  SetGauge("shard.partitions", 2);
  SetGauge("shard.partition.2.sessions", 3);
  SetGauge("shard.partition.2.commits", 41);
  SetGauge("shard.partition.2.queue_depth", 1);
  SetGauge("shard.partition.2.state", 0);

  std::string json = SnapshotJson();
  for (const char* key :
       {"\"partition_handoff_begin\"", "\"partition_handoff_cutover\"",
        "\"partition_handoff_complete\"", "\"shard.partitions\"",
        "\"shard.partition.2.sessions\"", "\"shard.partition.2.commits\"",
        "\"shard.partition.2.queue_depth\"", "\"shard.partition.2.state\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

// Structural well-formedness: balanced braces/brackets outside strings and
// valid string/escape nesting. Not a full JSON parser, but catches every
// quoting or nesting bug a formatter can make.
bool JsonWellFormed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escape = false;
  for (char c : s) {
    if (in_string) {
      if (escape) {
        escape = false;
      } else if (c == '\\') {
        escape = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && !escape && stack.empty();
}

TEST_F(ObsTest, SnapshotJsonIsWellFormedAndCarriesTheSchema) {
  Count("test.snapshot_counter", 5);
  SetGauge("test.snapshot_gauge", 2.5);
  Observe("test.snapshot_hist", 10.0);
  TraceEmit(TraceKind::kCommit, "test", 1, 2);
  Profiler::Instance().AddSample("test_module", 123.0);
  Profiler::Instance().AddCount("test.profile_count", 7);

  std::string json = SnapshotJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  for (const char* key :
       {"\"enabled\"", "\"modules\"", "\"profile_counters\"", "\"counters\"",
        "\"gauges\"", "\"histograms\"", "\"derived\"", "\"trace\"",
        "\"capacity\"", "\"total_emitted\"", "\"counts\"", "\"events\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"test.snapshot_counter\": 5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("test_module"), std::string::npos);
  EXPECT_NE(json.find("\"commit\""), std::string::npos);
}

TEST_F(ObsTest, SnapshotJsonEscapesDetailStrings) {
  TraceEmit(TraceKind::kTamperDetected, "tamper", 0, 0,
            "quote \" backslash \\ newline \n done");
  std::string json = SnapshotJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n done"),
            std::string::npos)
      << json;
}

// The read-path schema: a real store driven through a snapshot read must
// emit the sharded-cache counters and the snapshot gauges, and they must
// ride along in SnapshotJson for dashboards (tdb_stats) to pick up.
TEST_F(ObsTest, ReadPathCountersAppearInSnapshotJson) {
  MemUntrustedStore store({.segment_size = 16384, .num_segments = 256});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  auto cs = ChunkStore::Create(
      &store, TrustedServices{&secret, nullptr, &counter}, options);
  ASSERT_TRUE(cs.ok());
  TypeRegistry registry;
  ASSERT_TRUE(RegisterType<server::BlobValue>(registry).ok());
  auto pid = (*cs)->AllocatePartition();
  ChunkStore::Batch batch;
  batch.WritePartition(
      *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)});
  ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
  ObjectStore objects(cs->get(), *pid, &registry);

  auto txn = objects.Begin();
  auto id = txn->Insert(std::make_shared<server::BlobValue>("obs"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto ro = objects.BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE((*ro)->Get(*id).ok());
  ASSERT_TRUE((*ro)->Get(*id).ok());  // repeat: sharded-cache hit
  ASSERT_TRUE((*ro)->Commit().ok());
  // Repeat chunk reads below the object cache: the second is a
  // validated-chunk-cache hit (ObjectId is a ChunkId).
  ASSERT_TRUE((*cs)->Read(*id).ok());
  ASSERT_TRUE((*cs)->Read(*id).ok());
  (void)(*cs)->GetStats();  // refreshes the size gauges

  MetricsRegistry& m = MetricsRegistry::Instance();
  EXPECT_GT(m.GetCounter("cache.shard_hits"), 0u);
  EXPECT_GT(m.GetCounter("cache.shard_misses"), 0u);
  EXPECT_GT(m.GetCounter("snapshot.created"), 0u);
  EXPECT_EQ(m.Gauges().at("snapshot.pins"), 0.0);  // reader drained

  std::string json = SnapshotJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  for (const char* key :
       {"\"cache.shard_hits\"", "\"cache.shard_misses\"", "\"cache.shards\"",
        "\"object.cache_hits\"", "\"chunk.vcache_hits\"",
        "\"chunk.vcache_size\"", "\"snapshot.pins\"", "\"snapshot.created\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(ObsTest, DerivedRatiosComeFromCounters) {
  Count("object.cache_hits", 9);
  Count("object.cache_misses", 1);
  Count("chunk.bytes_committed", 100);
  Count("chunk.log_bytes_appended", 150);
  Count("cleaner.bytes_rewritten", 30);
  auto derived = DerivedRatios();
  EXPECT_DOUBLE_EQ(derived.at("object_cache_hit_ratio"), 0.9);
  EXPECT_DOUBLE_EQ(derived.at("write_amplification"), 1.5);
  EXPECT_DOUBLE_EQ(derived.at("cleaning_overhead"), 30.0 / 150.0);
}

// The disabled-path contract: with observability off, an instrumentation
// site is one relaxed atomic load plus a branch. The budget is deliberately
// enormous (200 ns/site — two orders of magnitude above the real cost) so
// the test only fails if someone reintroduces real work (locks, map
// lookups, clock reads) on the disabled path; it stays green on slow or
// loaded CI machines.
TEST_F(ObsTest, DisabledSitesAreCheap) {
  DisableAll();
  constexpr int kIterations = 1000000;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    Count("test.overhead");
    TraceEmit(TraceKind::kCacheHit, "test");
    LatencyTimer timer("test.overhead_us");
    Observe("test.overhead_hist", 1.0);  // bucket fill must stay off too
  }
  auto elapsed = std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  double ns_per_site = elapsed / (kIterations * 4.0);
  EXPECT_LT(ns_per_site, 200.0)
      << "disabled instrumentation cost " << ns_per_site << " ns per site";
  EXPECT_EQ(MetricsRegistry::Instance().GetCounter("test.overhead"), 0u);
  EXPECT_EQ(TraceJournal::Instance().TotalEmitted(), 0u);
  for (const auto& h : MetricsRegistry::Instance().Histograms()) {
    EXPECT_NE(h.name, "test.overhead_hist");
  }
}

// ---------------------------------------------------------------------------
// Percentiles: the shared quantile helpers and the bucketed histograms.

TEST(PercentileTest, SortedQuantileInterpolatesBetweenRanks) {
  std::vector<double> sorted = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.25), 20.0);
  // pos = 0.9 * 4 = 3.6 -> 40 + 0.6 * 10.
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.9), 46.0);
  EXPECT_DOUBLE_EQ(SortedQuantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(SortedQuantile({7.0}, 0.99), 7.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, -1.0), 10.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 2.0), 50.0);
  // The unsorted convenience wrapper agrees.
  EXPECT_DOUBLE_EQ(Quantile({50.0, 10.0, 40.0, 20.0, 30.0}, 0.9), 46.0);
}

TEST(PercentileTest, MeanAndStddevMatchHandComputation) {
  std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(samples), 5.0);
  // Sample variance (n-1): sum of squared deviations is 32, / 7.
  EXPECT_NEAR(SampleStddev(samples), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStddev({3.0}), 0.0);
}

TEST(PercentileTest, BucketIndexAndBoundsAreConsistent) {
  // Underflow and overflow edges.
  EXPECT_EQ(BucketIndex(0.0), 0u);
  EXPECT_EQ(BucketIndex(0.999), 0u);
  EXPECT_EQ(BucketIndex(-5.0), 0u);
  EXPECT_EQ(BucketIndex(std::ldexp(1.0, 40)), kNumLatencyBuckets - 1);
  // Every in-range value lands in a bucket whose [lower, lower+width) span
  // contains it, and the width obeys the relative-error contract.
  for (double v : {1.0, 1.5, 2.0, 3.75, 17.0, 1000.0, 123456.0, 8.5e9}) {
    size_t idx = BucketIndex(v);
    ASSERT_GT(idx, 0u);
    ASSERT_LT(idx, kNumLatencyBuckets - 1);
    double lo = BucketLowerBound(idx);
    double width = BucketWidth(idx);
    EXPECT_LE(lo, v) << v;
    EXPECT_LT(v, lo + width) << v;
    EXPECT_LE(width / lo, kQuantileRelativeError * (1.0 + 1e-12)) << v;
  }
}

// Histogram quantiles must track exact sample quantiles within the bucket
// error bound across differently shaped distributions.
TEST_F(ObsTest, HistogramQuantilesAreAccurate) {
  std::mt19937_64 rng(12345);
  struct Case {
    const char* name;
    std::function<double()> draw;
  };
  std::uniform_real_distribution<double> uniform(1.0, 1000.0);
  std::exponential_distribution<double> expo(1.0 / 500.0);
  std::lognormal_distribution<double> lognorm(5.0, 1.5);
  Case cases[] = {
      {"test.quant_uniform", [&] { return uniform(rng); }},
      {"test.quant_expo", [&] { return 1.0 + expo(rng); }},
      {"test.quant_lognorm", [&] { return 1.0 + lognorm(rng); }},
  };
  for (auto& c : cases) {
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      double v = c.draw();
      samples.push_back(v);
      Observe(c.name, v);
    }
    std::sort(samples.begin(), samples.end());
    for (const auto& h : MetricsRegistry::Instance().Histograms()) {
      if (h.name != c.name) {
        continue;
      }
      ASSERT_EQ(h.count, samples.size());
      for (double q : {0.5, 0.95, 0.99, 0.999}) {
        double exact = SortedQuantile(samples, q);
        double approx = h.Quantile(q);
        // Bound: one bucket width (6.25% relative) plus interpolation slack.
        EXPECT_NEAR(approx, exact, exact * (kQuantileRelativeError + 0.02))
            << c.name << " q=" << q;
      }
      // Edge quantiles clamp to the exact observed extrema.
      EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min);
      EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max);
    }
  }
}

TEST_F(ObsTest, HighQuantileOfFewSpreadSamplesReportsTheTopSample) {
  // Two observations three buckets-of-magnitude apart: a server that
  // answered one fast ping and one slow one. p95 must report the slow
  // request, not round down to the fast one (the cumulative rank for
  // q > 1/2 lands on the 2nd observation when count == 2).
  Observe("test.small_count", 22.0);
  Observe("test.small_count", 1686.0);
  for (const auto& h : MetricsRegistry::Instance().Histograms()) {
    if (h.name != "test.small_count") {
      continue;
    }
    ASSERT_EQ(h.count, 2u);
    EXPECT_LT(h.Quantile(0.25), 30.0);
    EXPECT_GT(h.Quantile(0.95), 1500.0);
    EXPECT_GT(h.Quantile(0.999), 1500.0);
  }
}

TEST_F(ObsTest, HistogramBucketsMergeAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Observe("test.bucket_merge", (t + 1) * 100.0 + i * 0.01);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const auto& h : MetricsRegistry::Instance().Histograms()) {
    if (h.name != "test.bucket_merge") {
      continue;
    }
    ASSERT_EQ(h.buckets.size(), kNumLatencyBuckets);
    uint64_t total = 0;
    for (uint64_t b : h.buckets) {
      total += b;
    }
    EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kPerThread);
    // The merged median sits between the per-thread bands.
    double p50 = h.Quantile(0.5);
    EXPECT_GT(p50, 100.0);
    EXPECT_LT(p50, 500.0);
  }
}

TEST_F(ObsTest, SnapshotJsonCarriesPercentiles) {
  for (int i = 1; i <= 1000; ++i) {
    Observe("test.pct_hist", static_cast<double>(i));
  }
  std::string json = SnapshotJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  for (const char* key : {"\"p50\"", "\"p95\"", "\"p99\"", "\"p999\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  for (const auto& h : MetricsRegistry::Instance().Histograms()) {
    if (h.name != "test.pct_hist") {
      continue;
    }
    EXPECT_NEAR(h.Quantile(0.5), 500.5, 500.5 * kQuantileRelativeError);
    EXPECT_NEAR(h.Quantile(0.99), 990.0, 990.0 * kQuantileRelativeError);
  }
}

}  // namespace
}  // namespace tdb::obs
