// The TSan audit for satellite concurrency (carries the `tsan` label): with
// the parallel crypto pipeline active (crypto_threads > 1), ChunkStore's
// monotonic stat cells are atomics and GetStats reads them without taking
// the store mutex, so stats readers, metrics snapshots, and committing
// threads may all run concurrently. Under TSAN this test fails on any racy
// counter; under a normal build it checks that concurrent reads never tear
// or go backwards and that the final counts are exact.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/chunk/chunk_store.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

TEST(StatsRaceTest, ConcurrentCommitsStatsAndSnapshots) {
  obs::ResetAll();
  obs::EnableAll();

  MemUntrustedStore store({.segment_size = 64 * 1024, .num_segments = 1024});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  options.validation.delta_ut = 5;
  options.crypto_threads = 4;
  auto cs = ChunkStore::Create(
      &store, TrustedServices{&secret, &reg, &counter}, options);
  ASSERT_TRUE(cs.ok()) << cs.status();
  ChunkStore& chunks = **cs;
  auto pid = chunks.AllocatePartition();
  ASSERT_TRUE(pid.ok());
  {
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256,
                           Bytes(16, 0x21)});
    ASSERT_TRUE(chunks.Commit(std::move(batch)).ok());
  }

  constexpr int kCommitters = 3;
  constexpr int kCommitsPerThread = 24;
  constexpr int kChunksPerCommit = 8;
  std::atomic<bool> done{false};

  // Committers drive the parallel crypto pipeline and the stat cells.
  std::vector<std::thread> committers;
  for (int t = 0; t < kCommitters; ++t) {
    committers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kCommitsPerThread; ++i) {
        ChunkStore::Batch batch;
        for (int c = 0; c < kChunksPerCommit; ++c) {
          auto id = chunks.AllocateChunk(*pid);
          ASSERT_TRUE(id.ok());
          batch.WriteChunk(*id, rng.NextBytes(600));
        }
        ASSERT_TRUE(chunks.Commit(std::move(batch)).ok());
      }
    });
  }

  // A stats reader hammering GetStats: monotonic counters must never go
  // backwards (a torn or racy read would).
  std::thread stats_reader([&] {
    uint64_t last_commits = 0;
    uint64_t last_appended = 0;
    while (!done.load(std::memory_order_acquire)) {
      ChunkStore::Stats s = chunks.GetStats();
      EXPECT_GE(s.commits, last_commits);
      EXPECT_GE(s.log_bytes_appended, last_appended);
      EXPECT_GE(s.log_bytes_appended, s.bytes_committed);
      last_commits = s.commits;
      last_appended = s.log_bytes_appended;
    }
  });

  // A snapshot reader merging the per-thread metric blocks concurrently.
  std::thread snapshot_reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::string json = obs::SnapshotJson(/*max_trace_events=*/8);
      EXPECT_FALSE(json.empty());
    }
  });

  for (std::thread& t : committers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  stats_reader.join();
  snapshot_reader.join();

  // Exactness: nothing was lost to races.
  ChunkStore::Stats s = chunks.GetStats();
  constexpr uint64_t kExpectedCommits = 1 + kCommitters * kCommitsPerThread;
  EXPECT_EQ(s.commits, kExpectedCommits);
  EXPECT_EQ(s.chunks_written,
            static_cast<uint64_t>(kCommitters) * kCommitsPerThread *
                kChunksPerCommit);
  EXPECT_EQ(obs::MetricsRegistry::Instance().GetCounter("chunk.commits"),
            kExpectedCommits);
  EXPECT_EQ(s.log_bytes_appended, store.bytes_written());

  obs::DisableAll();
  obs::ResetAll();
}

}  // namespace
}  // namespace tdb
