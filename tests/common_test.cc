// Unit tests for src/common: status/result, byte helpers, pickle streams,
// RNG, statistics, and the module profiler.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "src/common/bytes.h"
#include "src/common/pickle.h"
#include "src/obs/profiler.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace tdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  Status s = TamperDetectedError("hash mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTamperDetected);
  EXPECT_EQ(s.ToString(), "TAMPER_DETECTED: hash mismatch");
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status UseHalf(int x, int* out) {
  TDB_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return OkStatus();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalf(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
  EXPECT_EQ(HexDecode("0001abff"), b);
  EXPECT_EQ(HexDecode("0001ABFF"), b);
  EXPECT_TRUE(HexDecode("abc").empty());   // odd length
  EXPECT_TRUE(HexDecode("zz").empty());    // bad digits
}

TEST(BytesTest, FixedWidthIntegers) {
  Bytes b;
  PutU16(b, 0x1234);
  PutU32(b, 0xdeadbeef);
  PutU64(b, 0x0123456789abcdefULL);
  EXPECT_EQ(GetU16(b.data()), 0x1234);
  EXPECT_EQ(GetU32(b.data() + 2), 0xdeadbeefu);
  EXPECT_EQ(GetU64(b.data() + 6), 0x0123456789abcdefULL);
}

TEST(PickleTest, RoundTripAllTypes) {
  PickleWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteVarint(300);
  w.WriteI64(-42);
  w.WriteBool(true);
  w.WriteBytes(BytesFromString("payload"));
  w.WriteString("name");

  PickleReader r(w.data());
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadVarint(), 300u);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadBytes(), BytesFromString("payload"));
  EXPECT_EQ(r.ReadString(), "name");
  EXPECT_TRUE(r.Done().ok());
}

TEST(PickleTest, VarintBoundaries) {
  for (uint64_t v : {0ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                     0xffffffffULL, ~0ULL}) {
    PickleWriter w;
    w.WriteVarint(v);
    PickleReader r(w.data());
    EXPECT_EQ(r.ReadVarint(), v);
    EXPECT_TRUE(r.Done().ok());
  }
}

TEST(PickleTest, ZigzagBoundaries) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    PickleWriter w;
    w.WriteI64(v);
    PickleReader r(w.data());
    EXPECT_EQ(r.ReadI64(), v);
  }
}

TEST(PickleTest, TruncatedReadFailsSoftly) {
  PickleWriter w;
  w.WriteU64(1);
  PickleReader r(ByteView(w.data().data(), 4));
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.Done().ok());
}

TEST(PickleTest, TrailingBytesDetected) {
  PickleWriter w;
  w.WriteU8(1);
  w.WriteU8(2);
  PickleReader r(w.data());
  r.ReadU8();
  EXPECT_FALSE(r.Done().ok());
  EXPECT_TRUE(r.Check().ok());
}

TEST(PickleTest, MalformedVarintRejected) {
  Bytes evil(11, 0xff);  // more continuation bytes than a u64 can hold
  PickleReader r(evil);
  r.ReadVarint();
  EXPECT_FALSE(r.ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BytesHaveRequestedLength) {
  Rng rng(3);
  EXPECT_EQ(rng.NextBytes(0).size(), 0u);
  EXPECT_EQ(rng.NextBytes(7).size(), 7u);
  EXPECT_EQ(rng.NextBytes(16).size(), 16u);
}

TEST(RunningStatsTest, MeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(LinearRegressionTest, RecoversPlantedModel) {
  // y = 132 + 36*x1 + 0.24*x2, the paper's commit cost shape (§9.2.2).
  LinearRegression reg(2);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    double chunks = static_cast<double>(rng.NextInRange(1, 128));
    double bytes = static_cast<double>(rng.NextInRange(128, 16384));
    reg.Add({chunks, bytes}, 132.0 + 36.0 * chunks + 0.24 * bytes);
  }
  std::vector<double> beta = reg.Solve();
  ASSERT_EQ(beta.size(), 3u);
  EXPECT_NEAR(beta[0], 132.0, 1e-6);
  EXPECT_NEAR(beta[1], 36.0, 1e-9);
  EXPECT_NEAR(beta[2], 0.24, 1e-9);
  EXPECT_NEAR(reg.RSquared(beta), 1.0, 1e-9);
}

TEST(LinearRegressionTest, SingularSystemReturnsEmpty) {
  LinearRegression reg(1);
  reg.Add({1.0}, 2.0);  // underdetermined
  EXPECT_TRUE(reg.Solve().empty());
}

TEST(ProfilerTest, NestedScopesExcludeChildren) {
  // Wall-clock comparison, so a preemption mid-loop (common when the whole
  // suite runs in parallel) can inflate one side arbitrarily. Retry a few
  // times; the exclusion property only has to hold on an undisturbed run.
  Profiler& p = Profiler::Instance();
  double outer_us = 0, inner_us = 0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    p.Reset();
    p.Enable();
    {
      ProfileScope outer("outer_module");
      volatile double sink = 0;
      for (int i = 0; i < 100000; ++i) {
        sink += std::sqrt(static_cast<double>(i));
      }
      {
        ProfileScope inner("inner_module");
        for (int i = 0; i < 100000; ++i) {
          sink += std::sqrt(static_cast<double>(i));
        }
      }
    }
    p.Disable();
    auto snapshot = p.Snapshot();
    outer_us = 0;
    inner_us = 0;
    for (const auto& e : snapshot) {
      if (e.module == "outer_module") {
        outer_us = e.total_us;
      } else if (e.module == "inner_module") {
        inner_us = e.total_us;
      }
    }
    if (outer_us > 0.0 && inner_us > 0.0 && outer_us < inner_us * 1.8) {
      break;
    }
  }
  EXPECT_GT(outer_us, 0.0);
  EXPECT_GT(inner_us, 0.0);
  // Outer excludes inner's time, so both should be the same order of
  // magnitude (same loop), not outer ≈ 2× inner.
  EXPECT_LT(outer_us, inner_us * 1.8);
}

TEST(ProfilerTest, CountersAccumulate) {
  Profiler& p = Profiler::Instance();
  p.Reset();
  p.Enable();
  ProfileCount("flushes");
  ProfileCount("flushes", 2);
  p.Disable();
  EXPECT_EQ(p.GetCount("flushes"), 3u);
  ProfileCount("flushes");  // disabled: no effect
  EXPECT_EQ(p.GetCount("flushes"), 3u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::vector<int> hits(64, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, FreeFunctionWithNullPoolRunsInline) {
  std::vector<int> hits(17, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { hits[i]++; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(20, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ProfilerTest, SamplesFromWorkerThreadsMergeIntoSnapshot) {
  Profiler& p = Profiler::Instance();
  p.Reset();
  p.Enable();
  ThreadPool pool(4);
  pool.ParallelFor(64, [](size_t) {
    ProfileScope scope("pooled_module");
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) {
      sink = sink + static_cast<double>(i) * 0.5;
    }
  });
  p.Disable();
  auto snapshot = p.Snapshot();
  bool found = false;
  for (const auto& e : snapshot) {
    if (e.module == "pooled_module") {
      found = true;
      EXPECT_EQ(e.calls, 64u);
      EXPECT_GT(e.total_us, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tdb
