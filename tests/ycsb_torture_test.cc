// The soak/torture suite: driver traffic + balance transfers overlapping
// checkpoints, segment cleaning, chained incremental backups (with restore
// verification), and crash-point injection, in both local and wire modes.
// Short by default; set TDB_SOAK_SECONDS for a long soak.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/workload/torture.h"

namespace tdb::workload {
namespace {

TortureOptions BaseOptions(uint64_t seed) {
  TortureOptions options;
  options.seed = seed;
  options.duration = std::chrono::milliseconds(2000);
  options.epoch = std::chrono::milliseconds(400);
  options.records = 256;
  options.accounts = 12;
  options.driver_threads = 3;
  options.transfer_threads = 2;
  options.ApplySoakEnv();
  return options;
}

TEST(TortureOptionsTest, SoakEnvOverridesDuration) {
  TortureOptions options;
  auto original = options.duration;
  // Restore any caller-supplied soak setting afterwards so the soak tests
  // below still honor it.
  const char* prior = std::getenv("TDB_SOAK_SECONDS");
  std::string saved = prior != nullptr ? prior : "";
  bool had_prior = prior != nullptr;

  ASSERT_EQ(setenv("TDB_SOAK_SECONDS", "7", 1), 0);
  options.ApplySoakEnv();
  EXPECT_EQ(options.duration, std::chrono::milliseconds(7000));

  ASSERT_EQ(setenv("TDB_SOAK_SECONDS", "not-a-number", 1), 0);
  TortureOptions garbage;
  garbage.ApplySoakEnv();
  EXPECT_EQ(garbage.duration, original);

  ASSERT_EQ(setenv("TDB_SOAK_SECONDS", "-3", 1), 0);
  TortureOptions negative;
  negative.ApplySoakEnv();
  EXPECT_EQ(negative.duration, original);

  ASSERT_EQ(unsetenv("TDB_SOAK_SECONDS"), 0);
  TortureOptions unset;
  unset.ApplySoakEnv();
  EXPECT_EQ(unset.duration, original);

  if (had_prior) {
    ASSERT_EQ(setenv("TDB_SOAK_SECONDS", saved.c_str(), 1), 0);
  }
}

TEST(TortureTest, LocalModeSurvivesTheSoak) {
  TortureOptions options = BaseOptions(/*seed=*/42);
  options.mode = TortureMode::kLocal;
  TortureHarness harness(options);
  auto report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GE(report->epochs, 1u);
  EXPECT_GT(report->driver_txns_committed, 0u) << report->Summary();
  EXPECT_GT(report->transfers_committed, 0u) << report->Summary();
  EXPECT_EQ(report->crashes, report->recoveries) << report->Summary();
}

TEST(TortureTest, WireModeSurvivesTheSoak) {
  TortureOptions options = BaseOptions(/*seed=*/1042);
  options.mode = TortureMode::kWire;
  TortureHarness harness(options);
  auto report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GE(report->epochs, 1u);
  EXPECT_GT(report->driver_txns_committed, 0u) << report->Summary();
  EXPECT_GT(report->transfers_committed, 0u) << report->Summary();
  EXPECT_EQ(report->crashes, report->recoveries) << report->Summary();
}

TEST(TortureTest, CrashFreeSoakStillOverlapsMaintenance) {
  // With injection off the harness must come out clean *and* have done real
  // maintenance work under traffic (checkpoints, cleaning, backups).
  TortureOptions options = BaseOptions(/*seed=*/7);
  options.mode = TortureMode::kLocal;
  options.crash_injection = false;
  options.duration = std::chrono::milliseconds(1200);
  TortureHarness harness(options);
  auto report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->crashes, 0u);
  EXPECT_GT(report->checkpoints, 0u) << report->Summary();
  EXPECT_GT(report->backups, 0u) << report->Summary();
  EXPECT_GT(report->restores_verified, 0u) << report->Summary();
}

}  // namespace
}  // namespace tdb::workload
