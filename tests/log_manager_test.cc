// Unit tests for the log manager: append layout, segment chaining via
// next-segment chunks, scanning, live-byte accounting, residual tracking,
// and cleanable-segment selection.

#include <gtest/gtest.h>

#include "src/chunk/log_manager.h"
#include "src/common/rng.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

class LogManagerTest : public ::testing::Test {
 protected:
  LogManagerTest()
      : store_({.segment_size = 4096, .num_segments = 16}),
        suite_(*CryptoSuite::Create(
            CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)})),
        log_(&store_, &suite_) {
    EXPECT_TRUE(log_.InitFresh().ok());
  }

  // Builds a valid named version blob for scanning tests.
  Bytes MakeBlob(uint64_t rank, size_t body_size) {
    Rng rng(rank);
    Bytes body_ct = suite_.Encrypt(rng.NextBytes(body_size));
    VersionHeader header = VersionHeader::Named(
        ChunkId(1, 0, rank), static_cast<uint32_t>(body_ct.size()));
    Bytes blob = EncodeHeader(suite_, header);
    Append(blob, body_ct);
    return blob;
  }

  MemUntrustedStore store_;
  CryptoSuite suite_;
  LogManager log_;
};

TEST_F(LogManagerTest, AppendAssignsSequentialLocations) {
  std::vector<LogManager::Blob> blobs;
  blobs.push_back({MakeBlob(1, 100), true});
  blobs.push_back({MakeBlob(2, 100), true});
  auto locations = log_.Append(blobs, nullptr);
  ASSERT_TRUE(locations.ok());
  ASSERT_EQ(locations->size(), 2u);
  EXPECT_EQ((*locations)[0], (Location{0, 0}));
  EXPECT_EQ((*locations)[1].segment, 0u);
  EXPECT_EQ((*locations)[1].offset, blobs[0].bytes.size());
  EXPECT_EQ(log_.tail().offset,
            blobs[0].bytes.size() + blobs[1].bytes.size());
}

TEST_F(LogManagerTest, CrossesSegmentsWithNextSegmentChunks) {
  // Fill beyond one 4 KiB segment.
  std::vector<LogManager::Blob> blobs;
  for (int i = 0; i < 8; ++i) {
    blobs.push_back({MakeBlob(i, 900), true});
  }
  int links_seen = 0;
  auto locations = log_.Append(blobs, [&](ByteView, bool is_link) {
    if (is_link) {
      ++links_seen;
    }
  });
  ASSERT_TRUE(locations.ok());
  EXPECT_GE(links_seen, 1);
  // The scanner follows the chain and returns every version in order.
  LogManager::Scanner scanner = log_.MakeScanner({0, 0});
  std::vector<uint64_t> ranks;
  while (true) {
    auto item = scanner.Next();
    ASSERT_TRUE(item.ok());
    if (!item->has_value()) {
      break;
    }
    if (!(*item)->header.unnamed) {
      ranks.push_back((*item)->header.id.position.rank);
    }
  }
  EXPECT_EQ(ranks, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_GE(scanner.visited_segments().size(), 2u);
}

TEST_F(LogManagerTest, OversizedBlobRejected) {
  std::vector<LogManager::Blob> blobs;
  blobs.push_back({Bytes(5000, 1), true});
  EXPECT_EQ(log_.Append(blobs, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LogManagerTest, LiveByteAccounting) {
  std::vector<LogManager::Blob> blobs;
  Bytes blob = MakeBlob(1, 200);
  size_t blob_size = blob.size();
  blobs.push_back({blob, true});
  blobs.push_back({MakeBlob(2, 200), false});  // unnamed: used but not live
  auto locations = log_.Append(blobs, nullptr);
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(log_.segments()[0].live_bytes, blob_size);
  EXPECT_GT(log_.segments()[0].bytes_used, blob_size);
  log_.ReleaseLive((*locations)[0], static_cast<uint32_t>(blob_size));
  EXPECT_EQ(log_.segments()[0].live_bytes, 0u);
}

TEST_F(LogManagerTest, ScannerStopsAtGarbage) {
  std::vector<LogManager::Blob> blobs;
  blobs.push_back({MakeBlob(1, 100), true});
  ASSERT_TRUE(log_.Append(blobs, nullptr).ok());
  // Bytes after the tail are zero; the scanner must stop, not crash.
  LogManager::Scanner scanner = log_.MakeScanner({0, 0});
  auto first = scanner.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  auto end = scanner.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST_F(LogManagerTest, CleanableExcludesResidualAndOrdersByLiveness) {
  // Residual chain = {0}; put data in segments 1 and 2 by hand.
  log_.SetResidualChain({0});
  log_.NoteScanned(1, 1000);
  log_.NoteScanned(2, 1000);
  log_.AddLive({1, 0}, 900);
  log_.AddLive({2, 0}, 100);
  std::vector<uint32_t> cleanable = log_.CleanableSegments();
  ASSERT_EQ(cleanable.size(), 2u);
  EXPECT_EQ(cleanable[0], 2u);  // least live first
  EXPECT_EQ(cleanable[1], 1u);
  log_.MarkCleaned(2);
  EXPECT_EQ(log_.CleanableSegments(), std::vector<uint32_t>{1});
  // Cleaned segments become free only at the next checkpoint.
  uint32_t free_before = log_.free_segment_count();
  log_.OnCheckpointComplete({0, 0});
  EXPECT_EQ(log_.free_segment_count(), free_before + 1);
}

TEST_F(LogManagerTest, CheckpointRotatesResidual) {
  log_.SetResidualChain({3, 4, 5});
  EXPECT_TRUE(log_.InResidual(3));
  log_.OnCheckpointComplete({4, 128});
  EXPECT_FALSE(log_.InResidual(3));
  EXPECT_TRUE(log_.InResidual(4));
  EXPECT_TRUE(log_.InResidual(5));
}

TEST_F(LogManagerTest, OutOfSegmentsSurfaces) {
  MemUntrustedStore tiny({.segment_size = 4096, .num_segments = 2});
  LogManager log(&tiny, &suite_);
  ASSERT_TRUE(log.InitFresh().ok());
  Status last = OkStatus();
  for (int i = 0; i < 100 && last.ok(); ++i) {
    std::vector<LogManager::Blob> blobs;
    blobs.push_back({MakeBlob(i, 900), true});
    last = log.Append(blobs, nullptr).status();
  }
  EXPECT_EQ(last.code(), StatusCode::kOutOfSpace);
}

TEST_F(LogManagerTest, LoadFromCheckpointFixesLeaderBytes) {
  std::vector<SegmentInfo> table(16);
  table[3].state = SegmentInfo::State::kLive;
  table[3].bytes_used = 500;
  table[3].live_bytes = 300;
  ASSERT_TRUE(log_.LoadFromCheckpoint(table, {3, 500}, 120).ok());
  EXPECT_EQ(log_.tail(), (Location{3, 620}));
  EXPECT_EQ(log_.segments()[3].bytes_used, 620u);
  EXPECT_EQ(log_.segments()[3].live_bytes, 420u);
  EXPECT_TRUE(log_.InResidual(3));
}

}  // namespace
}  // namespace tdb
