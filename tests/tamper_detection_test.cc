// The adversarial tamper matrix (§2, §4.6, §4.8): a known workload is
// committed, then every tamper kind is applied at every structurally
// interesting location of the untrusted store, for both validation modes and
// both hash suites. Every cell must end in detection — reopen, read, or
// recovery returns kTamperDetected/kCorruption/kIoError — never a crash and
// never silently wrong data.
//
// Tamper kinds: bit flip, random overwrite, replay of a captured authentic
// segment (rollback), segment swap, truncation. Locations: the checkpoint
// root (leader chunk), a position-map chunk, a data chunk, the final log
// record's header and body, and (counter mode) the superblock. Separate
// tests cover wholesale store rollback, superblock rollback, spliced
// next-segment link cycles, and the two tampers that are *neutralized* by
// design rather than detected (grow-past-tail, and superblock tampering in
// direct-hash mode, where the register — not the superblock — names the
// head).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/chunk/chunk_store.h"
#include "src/chunk/log_format.h"
#include "src/common/pickle.h"
#include "src/common/rng.h"
#include "src/obs/trace.h"
#include "src/platform/trusted_store.h"
#include "src/store/tamper_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

CryptoParams PartitionParams(HashAlg hash) {
  return CryptoParams{CipherAlg::kAes128, hash, Bytes(16, 0x21)};
}

// A byte region of the untrusted store holding one interesting structure.
struct Region {
  uint32_t segment = 0;
  uint32_t offset = 0;
  uint32_t size = 0;
};

enum class Kind {
  kBitFlip,
  kRandomOverwrite,
  kReplayOld,  // replay a captured authentic segment: the rollback attack
  kSwapSegments,
  kTruncate,
};

enum class Target {
  kCheckpointRoot,
  kMapChunk,
  kDataChunk,
  kLogRecordHeader,
  kLogRecordBody,
  kSuperblock,
};

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kBitFlip: return "BitFlip";
    case Kind::kRandomOverwrite: return "RandomOverwrite";
    case Kind::kReplayOld: return "ReplayOld";
    case Kind::kSwapSegments: return "SwapSegments";
    case Kind::kTruncate: return "Truncate";
  }
  return "?";
}

const char* TargetName(Target t) {
  switch (t) {
    case Target::kCheckpointRoot: return "CheckpointRoot";
    case Target::kMapChunk: return "MapChunk";
    case Target::kDataChunk: return "DataChunk";
    case Target::kLogRecordHeader: return "LogRecordHeader";
    case Target::kLogRecordBody: return "LogRecordBody";
    case Target::kSuperblock: return "Superblock";
  }
  return "?";
}

// Everything the tamper cells need to know about the committed store: chunk
// ids and expected values, the interesting regions, the log tail, and a
// consistent midpoint snapshot for replay attacks.
struct Layout {
  std::map<int, ChunkId> ids;
  std::map<int, std::string> expected;
  Region checkpoint_root;
  Region map_chunk;
  Region data_chunk;
  Region log_header;
  Region log_body;
  Location tail;  // first byte past the final log record
  TamperStore::StoreImage midpoint;
};

const Region& RegionFor(Target target, const Layout& lay) {
  switch (target) {
    case Target::kCheckpointRoot: return lay.checkpoint_root;
    case Target::kMapChunk: return lay.map_chunk;
    case Target::kDataChunk: return lay.data_chunk;
    case Target::kLogRecordHeader: return lay.log_header;
    case Target::kLogRecordBody: return lay.log_body;
    case Target::kSuperblock: return lay.checkpoint_root;  // unused
  }
  return lay.checkpoint_root;
}

// Commits the known workload and records the layout:
//   commit chunks 0..9, checkpoint #1, <midpoint capture>,
//   update chunk 0 + commit chunk 10, checkpoint #2,
//   update chunk 1, commit chunk 11.
// The trusted state (register/counter) reflects the final commit, so any
// regression of the log must be caught on reopen.
bool BuildWorkload(TamperStore& store, TrustedServices trusted,
                   const ChunkStoreOptions& options, HashAlg hash,
                   Layout* lay) {
  auto cs = ChunkStore::Create(&store, trusted, options);
  if (!cs.ok()) {
    ADD_FAILURE() << "Create: " << cs.status();
    return false;
  }
  ChunkStore& chunks = **cs;
  auto pid = chunks.AllocatePartition();
  if (!pid.ok()) {
    ADD_FAILURE() << "AllocatePartition: " << pid.status();
    return false;
  }
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, PartitionParams(hash));
    if (!chunks.Commit(std::move(batch)).ok()) return false;
  }
  {
    ChunkStore::Batch batch;
    for (int i = 0; i < 10; ++i) {
      auto id = chunks.AllocateChunk(*pid);
      if (!id.ok()) return false;
      lay->ids[i] = *id;
      lay->expected[i] = "payload-" + std::to_string(i);
      batch.WriteChunk(*id, BytesFromString(lay->expected[i]));
    }
    if (!chunks.Commit(std::move(batch)).ok()) return false;
  }
  if (!chunks.Checkpoint().ok()) return false;

  // Midpoint: a fully consistent, authentic snapshot the adversary captures.
  auto image = store.CaptureStore();
  if (!image.ok()) {
    ADD_FAILURE() << "CaptureStore: " << image.status();
    return false;
  }
  lay->midpoint = std::move(*image);

  {
    ChunkStore::Batch batch;
    lay->expected[0] = "updated-0";
    batch.WriteChunk(lay->ids[0], BytesFromString(lay->expected[0]));
    auto id = chunks.AllocateChunk(*pid);
    if (!id.ok()) return false;
    lay->ids[10] = *id;
    lay->expected[10] = "payload-10";
    batch.WriteChunk(*id, BytesFromString(lay->expected[10]));
    if (!chunks.Commit(std::move(batch)).ok()) return false;
  }
  if (!chunks.Checkpoint().ok()) return false;
  {
    ChunkStore::Batch batch;
    lay->expected[1] = "updated-1";
    batch.WriteChunk(lay->ids[1], BytesFromString(lay->expected[1]));
    if (!chunks.Commit(std::move(batch)).ok()) return false;
  }
  {
    ChunkStore::Batch batch;
    auto id = chunks.AllocateChunk(*pid);
    if (!id.ok()) return false;
    lay->ids[11] = *id;
    lay->expected[11] = "payload-11";
    batch.WriteChunk(*id, BytesFromString(lay->expected[11]));
    if (!chunks.Commit(std::move(batch)).ok()) return false;
  }

  // Locate the structures. The checkpoint leader comes from the superblock
  // (written in both modes): magic u32, packed location u64, size u32.
  auto raw = store.ReadSuperblock();
  if (!raw.ok() || raw->empty()) {
    ADD_FAILURE() << "superblock unreadable";
    return false;
  }
  PickleReader r(*raw);
  (void)r.ReadU32();  // magic
  Location leader_loc = Location::Unpack(r.ReadU64());
  uint32_t leader_size = r.ReadU32();
  if (!r.Done().ok()) {
    ADD_FAILURE() << "superblock malformed";
    return false;
  }
  lay->checkpoint_root = Region{leader_loc.segment, leader_loc.offset,
                                leader_size};

  auto map_loc = chunks.DebugChunkLocation(ChunkId(*pid, 1, 0));
  if (!map_loc.ok()) {
    ADD_FAILURE() << "map chunk location: " << map_loc.status();
    return false;
  }
  lay->map_chunk = Region{map_loc->first.segment, map_loc->first.offset,
                          map_loc->second};

  auto data_loc = chunks.DebugChunkLocation(lay->ids[3]);
  if (!data_loc.ok()) return false;
  lay->data_chunk = Region{data_loc->first.segment, data_loc->first.offset,
                           data_loc->second};

  auto rec_loc = chunks.DebugChunkLocation(lay->ids[11]);
  if (!rec_loc.ok()) return false;
  uint32_t header_size =
      static_cast<uint32_t>(HeaderCipherSize(chunks.system_suite()));
  lay->log_header = Region{rec_loc->first.segment, rec_loc->first.offset,
                           header_size};
  lay->log_body = Region{rec_loc->first.segment,
                         rec_loc->first.offset + header_size,
                         rec_loc->second - header_size};
  lay->tail = Location{rec_loc->first.segment,
                       rec_loc->first.offset + rec_loc->second};
  // The last chunk version is not necessarily the last log record (counter
  // mode appends a commit record after it). Advance the tail past every
  // parseable record, the same probe recovery uses to find the log end.
  while (true) {
    auto header_ct =
        store.Read(lay->tail.segment, lay->tail.offset, header_size);
    if (!header_ct.ok()) break;
    auto header = DecodeHeader(chunks.system_suite(), *header_ct);
    if (!header.ok()) break;
    lay->tail.offset += header_size + header->body_size;
  }
  return true;
}

bool ApplyTamper(TamperStore& store, Kind kind, const Region& r,
                 const Layout& lay, Rng& rng) {
  switch (kind) {
    case Kind::kBitFlip:
      // offset+2 sits in the header's IV block for version regions, which
      // deterministically flips a plaintext header byte after CBC decryption.
      return store.FlipBits(r.segment, r.offset + 2, 0x01).ok();
    case Kind::kRandomOverwrite:
      return store.OverwriteRandom(r.segment, r.offset, r.size, rng).ok();
    case Kind::kReplayOld: {
      auto current = store.CaptureSegment(r.segment);
      if (!current.ok() ||
          *current == lay.midpoint.segments[r.segment]) {
        ADD_FAILURE() << "segment replay would be a no-op";
        return false;
      }
      return store.ReplaySegment(r.segment, lay.midpoint.segments[r.segment])
          .ok();
    }
    case Kind::kSwapSegments:
      return store.SwapSegments(r.segment, store.num_segments() - 1).ok();
    case Kind::kTruncate:
      return store.TruncateSegment(r.segment, r.offset).ok();
  }
  return false;
}

// The superblock is not segment-addressed; its tamper kinds go through
// capture + rewrite.
bool ApplySuperblockTamper(TamperStore& store, Kind kind, const Layout& lay,
                           Rng& rng) {
  auto current = store.CaptureSuperblock();
  if (!current.ok() || current->empty()) return false;
  Bytes sb = *current;
  switch (kind) {
    case Kind::kBitFlip:
      // Byte 8 is the low byte of the packed leader segment: the head now
      // points at a different (empty) segment.
      sb[8] ^= 0x01;
      break;
    case Kind::kRandomOverwrite:
      sb = rng.NextBytes(sb.size());
      if (sb == *current) sb[0] ^= 0xFF;
      break;
    case Kind::kReplayOld:
      if (lay.midpoint.superblock == sb) {
        ADD_FAILURE() << "superblock replay would be a no-op";
        return false;
      }
      sb = lay.midpoint.superblock;
      break;
    case Kind::kSwapSegments: {
      // Authentic bytes from the wrong place: the start of segment 0.
      auto seg = store.Read(0, 0, sb.size());
      if (!seg.ok()) return false;
      sb = *seg;
      break;
    }
    case Kind::kTruncate:
      sb.resize(sb.size() / 2);
      break;
  }
  return store.ReplaySuperblock(sb).ok();
}

bool IsDetectionCode(StatusCode c) {
  return c == StatusCode::kTamperDetected || c == StatusCode::kCorruption ||
         c == StatusCode::kIoError;
}

// Reopens the tampered store and checks the cell's outcome: no crash (by
// construction), no silently wrong data ever, and — when `require_detection`
// — at least one of open/read fails with a detection code.
//
// Every kTamperDetected status is constructed through the single
// TamperDetectedError chokepoint, which emits one structured trace event, so
// the journal must show at least one kTamperDetected event per surfaced
// tamper status (recovery can additionally construct-and-swallow tamper
// statuses while probing, hence >= rather than ==; the exact-one case is
// covered by TamperEventEmissionTest).
void CheckCell(UntrustedStore* store, TrustedServices trusted,
               const ChunkStoreOptions& options, const Layout& lay,
               bool require_detection, const std::string& cell) {
  obs::TraceJournal& journal = obs::TraceJournal::Instance();
  journal.Enable();
  uint64_t events_before = journal.CountOf(obs::TraceKind::kTamperDetected);
  int tamper_statuses = 0;
  auto reopened = ChunkStore::Open(store, trusted, options);
  bool detected = false;
  if (!reopened.ok()) {
    EXPECT_TRUE(IsDetectionCode(reopened.status().code()))
        << cell << ": open failed with unexpected code: " << reopened.status();
    detected = true;
    if (reopened.status().code() == StatusCode::kTamperDetected) {
      ++tamper_statuses;
    }
  } else {
    for (const auto& [slot, id] : lay.ids) {
      auto data = (*reopened)->Read(id);
      if (data.ok()) {
        EXPECT_EQ(StringFromBytes(*data), lay.expected.at(slot))
            << cell << " slot " << slot << ": SILENTLY WRONG DATA";
      } else {
        EXPECT_TRUE(IsDetectionCode(data.status().code()))
            << cell << " slot " << slot
            << ": read failed with unexpected code: " << data.status();
        detected = true;
        if (data.status().code() == StatusCode::kTamperDetected) {
          ++tamper_statuses;
        }
      }
    }
  }
  if (require_detection) {
    EXPECT_TRUE(detected) << cell << ": tampering went UNDETECTED";
  }
  uint64_t delta =
      journal.CountOf(obs::TraceKind::kTamperDetected) - events_before;
  EXPECT_GE(delta, static_cast<uint64_t>(tamper_statuses))
      << cell << ": " << tamper_statuses
      << " tamper statuses surfaced but only " << delta
      << " tamper_detected trace events were emitted";
  // Every alarm in the journal must carry its cause (the status message
  // names the structure and location that failed validation).
  for (const obs::TraceEvent& event : journal.Snapshot()) {
    if (event.kind != obs::TraceKind::kTamperDetected) continue;
    EXPECT_FALSE(event.detail.empty())
        << cell << ": tamper_detected event without a cause";
    EXPECT_STREQ(event.module, "tamper") << cell;
  }
}

struct MatrixConfig {
  ValidationMode mode;
  HashAlg hash;
};

std::string ConfigName(const MatrixConfig& cfg) {
  std::string name =
      cfg.mode == ValidationMode::kCounter ? "Counter" : "DirectHash";
  name += cfg.hash == HashAlg::kSha1 ? "_Sha1" : "_Sha256";
  return name;
}

class TamperMatrixTest : public ::testing::TestWithParam<MatrixConfig> {
 protected:
  // One cell = a fresh store, the fixed workload, one tamper, one check.
  void RunCell(Kind kind, Target target, uint64_t seed) {
    MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 16});
    TamperStore store(&mem);
    MemSecretStore secret(Bytes(32, 0xA5));
    MemTamperResistantRegister reg;
    MemMonotonicCounter counter;
    TrustedServices trusted{&secret, &reg, &counter};
    ChunkStoreOptions options;
    options.validation.mode = GetParam().mode;
    options.system_hash = GetParam().hash;
    Layout lay;
    ASSERT_TRUE(BuildWorkload(store, trusted, options, GetParam().hash, &lay));
    std::string cell = std::string(KindName(kind)) + "@" + TargetName(target) +
                       "/" + ConfigName(GetParam());
    Rng rng(seed);
    if (target == Target::kSuperblock) {
      ASSERT_TRUE(ApplySuperblockTamper(store, kind, lay, rng)) << cell;
    } else {
      ASSERT_TRUE(ApplyTamper(store, kind, RegionFor(target, lay), lay, rng))
          << cell;
    }
    CheckCell(&store, trusted, options, lay, /*require_detection=*/true, cell);
  }
};

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, TamperMatrixTest,
    ::testing::Values(MatrixConfig{ValidationMode::kCounter, HashAlg::kSha1},
                      MatrixConfig{ValidationMode::kCounter, HashAlg::kSha256},
                      MatrixConfig{ValidationMode::kDirectHash, HashAlg::kSha1},
                      MatrixConfig{ValidationMode::kDirectHash,
                                   HashAlg::kSha256}),
    [](const auto& info) { return ConfigName(info.param); });

// The core matrix: 5 tamper kinds x 5 locations, per (mode, hash) config.
// Every cell must detect.
TEST_P(TamperMatrixTest, EveryKindAtEveryLocationIsDetected) {
  const Kind kinds[] = {Kind::kBitFlip, Kind::kRandomOverwrite,
                        Kind::kReplayOld, Kind::kSwapSegments,
                        Kind::kTruncate};
  const Target targets[] = {Target::kCheckpointRoot, Target::kMapChunk,
                            Target::kDataChunk, Target::kLogRecordHeader,
                            Target::kLogRecordBody};
  uint64_t seed = 1000;
  for (Kind kind : kinds) {
    for (Target target : targets) {
      RunCell(kind, target, ++seed);
      if (HasFatalFailure()) return;
    }
  }
}

// In counter mode the superblock names the recovery head, so it is a sixth
// fully-detected location — including the superblock rollback attack
// (ReplayOld: an authentic but stale superblock).
TEST_P(TamperMatrixTest, SuperblockTamperingIsDetectedInCounterMode) {
  if (GetParam().mode != ValidationMode::kCounter) {
    GTEST_SKIP() << "direct-hash mode ignores the superblock";
  }
  const Kind kinds[] = {Kind::kBitFlip, Kind::kRandomOverwrite,
                        Kind::kReplayOld, Kind::kSwapSegments,
                        Kind::kTruncate};
  uint64_t seed = 2000;
  for (Kind kind : kinds) {
    RunCell(kind, Target::kSuperblock, ++seed);
    if (HasFatalFailure()) return;
  }
}

// Wholesale rollback: the adversary replays a bit-for-bit authentic image of
// the entire untrusted store (all segments + superblock) captured at the
// midpoint. Counter mode catches the regressed commit count; direct-hash
// mode catches the stale bytes at the register's head. Both must refuse to
// open with kTamperDetected.
TEST_P(TamperMatrixTest, FullStoreRollbackIsDetected) {
  MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 16});
  TamperStore store(&mem);
  MemSecretStore secret(Bytes(32, 0xA5));
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  TrustedServices trusted{&secret, &reg, &counter};
  ChunkStoreOptions options;
  options.validation.mode = GetParam().mode;
  options.system_hash = GetParam().hash;
  Layout lay;
  ASSERT_TRUE(BuildWorkload(store, trusted, options, GetParam().hash, &lay));

  obs::TraceJournal& journal = obs::TraceJournal::Instance();
  journal.Enable();
  uint64_t events_before = journal.CountOf(obs::TraceKind::kTamperDetected);
  ASSERT_TRUE(store.ReplayStore(lay.midpoint).ok());
  auto reopened = ChunkStore::Open(&store, trusted, options);
  ASSERT_FALSE(reopened.ok()) << "rolled-back store opened successfully";
  EXPECT_EQ(reopened.status().code(), StatusCode::kTamperDetected)
      << reopened.status();
  EXPECT_GE(journal.CountOf(obs::TraceKind::kTamperDetected), events_before + 1)
      << "rollback detection raised no tamper_detected trace event";
}

// The 1:1 contract between alarms and trace events, in its exact form: a
// single tampered read constructs a single kTamperDetected status, so the
// journal must grow by exactly one event, and that event must carry the
// alarm's cause. (Chunk 3 predates the first checkpoint, so recovery never
// probes it and the reopen itself raises no alarm.)
TEST(TamperEventEmissionTest, SingleDetectedReadEmitsExactlyOneEvent) {
  MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 16});
  TamperStore store(&mem);
  MemSecretStore secret(Bytes(32, 0xA5));
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  TrustedServices trusted{&secret, &reg, &counter};
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  options.system_hash = HashAlg::kSha256;
  Layout lay;
  ASSERT_TRUE(BuildWorkload(store, trusted, options, HashAlg::kSha256, &lay));

  // Flip one bit early in the data chunk's *body* ciphertext: decryption
  // still succeeds (the padding block is untouched), the body hash does not
  // match, and exactly one TamperDetectedError is constructed on read.
  const Region& r = lay.data_chunk;
  uint32_t header_size = 0;
  {
    auto cs = ChunkStore::Open(&store, trusted, options);
    ASSERT_TRUE(cs.ok()) << cs.status();
    header_size = static_cast<uint32_t>(HeaderCipherSize((*cs)->system_suite()));
  }
  ASSERT_GT(r.size, header_size + 2);
  ASSERT_TRUE(store.FlipBits(r.segment, r.offset + header_size + 2, 0x01).ok());

  auto reopened = ChunkStore::Open(&store, trusted, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  obs::TraceJournal& journal = obs::TraceJournal::Instance();
  journal.Enable();
  uint64_t events_before = journal.CountOf(obs::TraceKind::kTamperDetected);
  auto data = (*reopened)->Read(lay.ids[3]);
  ASSERT_FALSE(data.ok()) << "tampered chunk read succeeded";
  EXPECT_EQ(data.status().code(), StatusCode::kTamperDetected)
      << data.status();
  EXPECT_EQ(journal.CountOf(obs::TraceKind::kTamperDetected),
            events_before + 1)
      << "one alarm must emit exactly one tamper_detected event";
  const std::vector<obs::TraceEvent> events = journal.Snapshot();
  ASSERT_FALSE(events.empty());
  const obs::TraceEvent& last = events.back();
  EXPECT_EQ(last.kind, obs::TraceKind::kTamperDetected);
  EXPECT_STREQ(last.module, "tamper");
  EXPECT_EQ(last.detail, data.status().message())
      << "the event must carry the alarm's kind and location";
}

// Growing a segment past the log tail is neutralized by design: garbage
// past the tail is indistinguishable from a torn final write, so recovery
// must stop cleanly at the tail and serve the full committed state.
TEST_P(TamperMatrixTest, GrowPastTailIsNeutralized) {
  MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 16});
  TamperStore store(&mem);
  MemSecretStore secret(Bytes(32, 0xA5));
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  TrustedServices trusted{&secret, &reg, &counter};
  ChunkStoreOptions options;
  options.validation.mode = GetParam().mode;
  options.system_hash = GetParam().hash;
  Layout lay;
  ASSERT_TRUE(BuildWorkload(store, trusted, options, GetParam().hash, &lay));

  Rng rng(42);
  ASSERT_TRUE(store.GrowSegment(lay.tail.segment, lay.tail.offset, rng).ok());
  auto reopened = ChunkStore::Open(&store, trusted, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  for (const auto& [slot, id] : lay.ids) {
    auto data = (*reopened)->Read(id);
    ASSERT_TRUE(data.ok()) << "slot " << slot << ": " << data.status();
    EXPECT_EQ(StringFromBytes(*data), lay.expected.at(slot));
  }
}

// In direct-hash mode the register, not the superblock, names the head; a
// forged superblock must be ignored outright (flagging it would raise false
// alarms after a crash between the register write and the superblock write).
TEST(TamperNeutralizedTest, DirectHashModeIgnoresSuperblockForgery) {
  MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 16});
  TamperStore store(&mem);
  MemSecretStore secret(Bytes(32, 0xA5));
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  TrustedServices trusted{&secret, &reg, &counter};
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kDirectHash;
  Layout lay;
  ASSERT_TRUE(BuildWorkload(store, trusted, options, HashAlg::kSha256, &lay));

  Rng rng(43);
  ASSERT_TRUE(ApplySuperblockTamper(store, Kind::kRandomOverwrite, lay, rng));
  auto reopened = ChunkStore::Open(&store, trusted, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  for (const auto& [slot, id] : lay.ids) {
    auto data = (*reopened)->Read(id);
    ASSERT_TRUE(data.ok()) << "slot " << slot << ": " << data.status();
    EXPECT_EQ(StringFromBytes(*data), lay.expected.at(slot));
  }
}

// Targeted checks of the hardened superblock/head parsing: a head location
// pointing outside the store, a truncated superblock, and a bad magic must
// all report tampering (not crash, not misuse errors).
TEST(SuperblockForgeryTest, ForgedSuperblockFieldsReportTampering) {
  MemUntrustedStore mem({.segment_size = 32 * 1024, .num_segments = 16});
  TamperStore store(&mem);
  MemSecretStore secret(Bytes(32, 0xA5));
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  TrustedServices trusted{&secret, &reg, &counter};
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  Layout lay;
  ASSERT_TRUE(BuildWorkload(store, trusted, options, HashAlg::kSha256, &lay));
  Bytes good = *store.CaptureSuperblock();

  // Head segment far outside the store.
  {
    PickleWriter w;
    w.WriteU32(0x54444201);  // superblock magic
    w.WriteU64(Location{9999, 0}.Pack());
    w.WriteU32(64);
    ASSERT_TRUE(store.ReplaySuperblock(w.data()).ok());
    auto reopened = ChunkStore::Open(&store, trusted, options);
    ASSERT_FALSE(reopened.ok());
    EXPECT_EQ(reopened.status().code(), StatusCode::kTamperDetected)
        << reopened.status();
  }
  // Head offset so large the leader cannot fit in its segment.
  {
    PickleWriter w;
    w.WriteU32(0x54444201);
    w.WriteU64(Location{0, 0xFFFFFF00}.Pack());
    w.WriteU32(64);
    ASSERT_TRUE(store.ReplaySuperblock(w.data()).ok());
    auto reopened = ChunkStore::Open(&store, trusted, options);
    ASSERT_FALSE(reopened.ok());
    EXPECT_EQ(reopened.status().code(), StatusCode::kTamperDetected)
        << reopened.status();
  }
  // Truncated superblock.
  {
    Bytes half(good.begin(), good.begin() + good.size() / 2);
    ASSERT_TRUE(store.ReplaySuperblock(half).ok());
    auto reopened = ChunkStore::Open(&store, trusted, options);
    ASSERT_FALSE(reopened.ok());
    EXPECT_EQ(reopened.status().code(), StatusCode::kTamperDetected)
        << reopened.status();
  }
  // Bad magic.
  {
    Bytes bad = good;
    bad[0] ^= 0xFF;
    ASSERT_TRUE(store.ReplaySuperblock(bad).ok());
    auto reopened = ChunkStore::Open(&store, trusted, options);
    ASSERT_FALSE(reopened.ok());
    EXPECT_EQ(reopened.status().code(), StatusCode::kTamperDetected)
        << reopened.status();
  }
  // Sanity: restoring the authentic superblock opens cleanly again.
  ASSERT_TRUE(store.ReplaySuperblock(good).ok());
  auto reopened = ChunkStore::Open(&store, trusted, options);
  EXPECT_TRUE(reopened.ok()) << reopened.status();
}

// Splicing authentic segments so that next-segment links form a cycle must
// fail cleanly, not scan forever. Small segments force the residual log to
// span several segments; copying the chain's first segment over a later one
// turns the chain back on itself.
class LinkCycleTest : public ::testing::TestWithParam<MatrixConfig> {};

INSTANTIATE_TEST_SUITE_P(
    BothModes, LinkCycleTest,
    ::testing::Values(MatrixConfig{ValidationMode::kCounter, HashAlg::kSha256},
                      MatrixConfig{ValidationMode::kDirectHash,
                                   HashAlg::kSha256}),
    [](const auto& info) { return ConfigName(info.param); });

TEST_P(LinkCycleTest, SplicedLinkCycleFailsInsteadOfHanging) {
  MemUntrustedStore mem({.segment_size = 2048, .num_segments = 32});
  TamperStore store(&mem);
  MemSecretStore secret(Bytes(32, 0xA5));
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  TrustedServices trusted{&secret, &reg, &counter};
  ChunkStoreOptions options;
  options.validation.mode = GetParam().mode;
  options.system_hash = GetParam().hash;
  std::vector<ChunkId> ids;
  uint32_t first_segment = 0;
  uint32_t last_segment = 0;
  {
    auto cs = ChunkStore::Create(&store, trusted, options);
    ASSERT_TRUE(cs.ok()) << cs.status();
    auto pid = (*cs)->AllocatePartition();
    ASSERT_TRUE(pid.ok());
    {
      ChunkStore::Batch batch;
      batch.WritePartition(*pid, PartitionParams(GetParam().hash));
      ASSERT_TRUE((*cs)->Commit(std::move(batch)).ok());
    }
    // Append commits until the residual log has crossed >= 2 segment
    // boundaries (so the chain contains at least two link records).
    for (int i = 0; i < 40; ++i) {
      auto id = (*cs)->AllocateChunk(*pid);
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
      ASSERT_TRUE(
          (*cs)->WriteChunk(*id, Bytes(200, static_cast<uint8_t>(i))).ok());
    }
    auto first_loc = (*cs)->DebugChunkLocation(ids.front());
    auto last_loc = (*cs)->DebugChunkLocation(ids.back());
    ASSERT_TRUE(first_loc.ok() && last_loc.ok());
    first_segment = first_loc->first.segment;
    last_segment = last_loc->first.segment;
    ASSERT_GE(last_segment - first_segment, 2u)
        << "workload too small to span segments";
  }
  // Copy the first chain segment over the last: its next-segment link now
  // points back into the already-scanned part of the chain.
  auto head_content = store.CaptureSegment(first_segment);
  ASSERT_TRUE(head_content.ok());
  ASSERT_TRUE(store.ReplaySegment(last_segment, *head_content).ok());

  auto reopened = ChunkStore::Open(&store, trusted, options);
  ASSERT_FALSE(reopened.ok()) << "spliced log opened successfully";
  EXPECT_TRUE(IsDetectionCode(reopened.status().code())) << reopened.status();
}

}  // namespace
}  // namespace tdb
